open Ch_graph
open Pls

let inf = 1 lsl 20

let fld l i = try List.nth l i with _ -> min_int

let lbl view u = view.label_of u

let g_nbrs view = List.map (fun (u, _, _) -> u) view.neighbors

let h_nbrs view =
  List.filter_map (fun (u, _, h) -> if h then Some u else None) view.neighbors

let h_degree view = List.length (h_nbrs view)

let all_g view p = List.for_all p (g_nbrs view)

(* ------------------------------------------------------------------ *)
(* Label-building blocks (provers)                                     *)
(* ------------------------------------------------------------------ *)

(* pointer tree over G towards [root]: fields (rid, dist) *)
let pointer_fields g root =
  let dist = Props.bfs_dist g root in
  Array.map (fun d -> assert (d < max_int); [ root; d ]) dist

(* ------------------------------------------------------------------ *)
(* Verifier building blocks                                            *)
(* ------------------------------------------------------------------ *)

(* pointer tree over G: consistent root id everywhere, distance decreases
   towards a root that must satisfy [root_ok] *)
let check_pointer view ~rid_at ~d_at ~root_ok =
  let rid = fld view.my_label rid_at and d = fld view.my_label d_at in
  d >= 0
  && all_g view (fun u -> fld (lbl view u) rid_at = rid)
  &&
  if d = 0 then rid = view.vertex && root_ok ()
  else List.exists (fun u -> fld (lbl view u) d_at = d - 1) (g_nbrs view)

(* counted spanning tree over G: explicit parent pointers and verified
   subtree sums of [contribution]; the root must satisfy [root_ok sum] *)
let check_counted_tree view ~rid_at ~d_at ~parent_at ~cnt_at ~contribution ~root_ok =
  let rid = fld view.my_label rid_at
  and d = fld view.my_label d_at
  and parent = fld view.my_label parent_at
  and cnt = fld view.my_label cnt_at in
  let children =
    List.filter
      (fun u ->
        fld (lbl view u) parent_at = view.vertex
        && fld (lbl view u) d_at = d + 1)
      (g_nbrs view)
  in
  let sum =
    List.fold_left (fun acc u -> acc + fld (lbl view u) cnt_at) (contribution view)
      children
  in
  d >= 0
  && all_g view (fun u -> fld (lbl view u) rid_at = rid)
  && cnt = sum
  && (if d = 0 then rid = view.vertex && root_ok cnt
      else
        List.mem parent (g_nbrs view)
        && fld (lbl view parent) d_at = d - 1)

(* prover side of the counted tree *)
let counted_tree_fields g root ~contribution =
  let dist = Props.bfs_dist g root in
  let parent = Props.bfs_tree g root in
  let n = Graph.n g in
  let cnt = Array.make n 0 in
  let order = List.sort (fun a b -> compare dist.(b) dist.(a)) (List.init n Fun.id) in
  List.iter
    (fun v ->
      cnt.(v) <- cnt.(v) + contribution v;
      if parent.(v) >= 0 then cnt.(parent.(v)) <- cnt.(parent.(v)) + cnt.(v))
    order;
  Array.init n (fun v -> [ root; dist.(v); parent.(v); cnt.(v) ])

(* flags separated by the H edges (optionally sparing the designated e) *)
let check_mono_flags view ~flag_at ~spare_e ~over =
  let flag = fld view.my_label flag_at in
  (flag = 0 || flag = 1)
  && List.for_all
       (fun (u, _, in_h) ->
         let relevant = match over with `H -> in_h | `Not_h -> not in_h in
         let spared = spare_e && view.e_endpoint = Some u in
         if relevant && not spared then fld (lbl view u) flag_at = flag
         else true)
       view.neighbors

(* H-components flags for the prover *)
let h_component_flags inst =
  let hg = Verif.h_graph inst in
  let comp, _ = Props.components hg in
  comp

(* ------------------------------------------------------------------ *)
(* Spanning tree                                                       *)
(* ------------------------------------------------------------------ *)

let spanning_tree =
  {
    name = "spanning-tree";
    predicate = (fun inst -> Props.is_tree (Verif.h_graph inst));
    prover =
      (fun inst ->
        let hg = Verif.h_graph inst in
        if not (Props.is_tree hg) then None
        else begin
          let dist = Props.bfs_dist hg 0 in
          Some (Array.map (fun d -> [ 0; d ]) dist)
        end);
    verifier =
      (fun view ->
        let rid = fld view.my_label 0 and d = fld view.my_label 1 in
        let h_dists = List.map (fun u -> fld (lbl view u) 1) (h_nbrs view) in
        d >= 0
        && all_g view (fun u -> fld (lbl view u) 0 = rid)
        && List.for_all (fun du -> du = d - 1 || du = d + 1) h_dists
        && List.length (List.filter (fun du -> du = d - 1) h_dists)
           = (if d = 0 then 0 else 1)
        && (d > 0 || rid = view.vertex));
  }

(* shared "H is disconnected" certificate: flag + two pointer trees *)
let disconnection_fields inst =
  let g = inst.Verif.graph in
  let comp = h_component_flags inst in
  let flag = Array.map (fun c -> if c = comp.(0) then 0 else 1) comp in
  let root1 = 0 in
  let root2 =
    let rec find v = if flag.(v) = 1 then v else find (v + 1) in
    find 0
  in
  let p1 = pointer_fields g root1 and p2 = pointer_fields g root2 in
  Array.init (Graph.n g) (fun v -> (flag.(v) :: p1.(v)) @ p2.(v))

let check_disconnection view ~offset =
  let flag_at = offset in
  check_mono_flags view ~flag_at ~spare_e:false ~over:`H
  && check_pointer view ~rid_at:(offset + 1) ~d_at:(offset + 2)
       ~root_ok:(fun () -> fld view.my_label flag_at = 0)
  && check_pointer view ~rid_at:(offset + 3) ~d_at:(offset + 4)
       ~root_ok:(fun () -> fld view.my_label flag_at = 1)

let connected =
  {
    name = "connected";
    predicate = (fun inst -> Props.connected (Verif.h_graph inst));
    prover =
      (fun inst ->
        let hg = Verif.h_graph inst in
        if not (Props.connected hg) then None
        else Some (Array.map (fun d -> [ 0; d ]) (Props.bfs_dist hg 0)));
    verifier =
      (fun view ->
        let rid = fld view.my_label 0 and d = fld view.my_label 1 in
        d >= 0
        && all_g view (fun u -> fld (lbl view u) 0 = rid)
        &&
        if d = 0 then rid = view.vertex
        else List.exists (fun u -> fld (lbl view u) 1 = d - 1) (h_nbrs view));
  }

let not_connected =
  {
    name = "not-connected";
    predicate = (fun inst -> not (Props.connected (Verif.h_graph inst)));
    prover =
      (fun inst ->
        if Props.connected (Verif.h_graph inst) then None
        else Some (disconnection_fields inst));
    verifier = (fun view -> check_disconnection view ~offset:0);
  }

(* ------------------------------------------------------------------ *)
(* Cycles                                                              *)
(* ------------------------------------------------------------------ *)

let two_core inst =
  (* vertices of the 2-core of H *)
  let g = inst.Verif.graph in
  let n = Graph.n g in
  let deg = Array.init n (fun v -> Verif.h_degree inst v) in
  let queue = Queue.create () in
  let gone = Array.make n false in
  for v = 0 to n - 1 do
    if deg.(v) <= 1 then Queue.add v queue
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    if not gone.(v) then begin
      gone.(v) <- true;
      List.iter
        (fun u ->
          if Verif.in_h inst v u && not gone.(u) then begin
            deg.(u) <- deg.(u) - 1;
            if deg.(u) <= 1 then Queue.add u queue
          end)
        (Graph.neighbors g v)
    end
  done;
  List.filter (fun v -> not gone.(v)) (List.init n Fun.id)

let dist_to_set g set =
  let n = Graph.n g in
  let dist = Array.make n max_int in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      dist.(v) <- 0;
      Queue.add v queue)
    set;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    List.iter
      (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u queue
        end)
      (Graph.neighbors g v)
  done;
  dist

let cycle_fields inst core =
  let dist = dist_to_set inst.Verif.graph core in
  Array.map (fun d -> [ (if d = max_int then inf else d) ]) dist

let check_cycle_marking view ~d_at =
  let d = fld view.my_label d_at in
  d >= 0
  &&
  if d = 0 then
    List.length (List.filter (fun u -> fld (lbl view u) d_at = 0) (h_nbrs view)) >= 2
  else List.exists (fun u -> fld (lbl view u) d_at = d - 1) (g_nbrs view)

let has_cycle =
  {
    name = "has-cycle";
    predicate = (fun inst -> not (Props.is_forest (Verif.h_graph inst)));
    prover =
      (fun inst ->
        let core = two_core inst in
        if core = [] then None else Some (cycle_fields inst core));
    verifier = (fun view -> check_cycle_marking view ~d_at:0);
  }

let acyclic =
  {
    name = "acyclic";
    predicate = (fun inst -> Props.is_forest (Verif.h_graph inst));
    prover =
      (fun inst ->
        let hg = Verif.h_graph inst in
        if not (Props.is_forest hg) then None
        else begin
          let comp, _ = Props.components hg in
          let n = Graph.n hg in
          let root = Array.make n (-1) in
          for v = n - 1 downto 0 do
            root.(comp.(v)) <- v
          done;
          let labels = Array.make n [] in
          for v = 0 to n - 1 do
            if root.(comp.(v)) = v then begin
              let dist = Props.bfs_dist hg v in
              for u = 0 to n - 1 do
                if comp.(u) = comp.(v) then labels.(u) <- [ v; dist.(u) ]
              done
            end
          done;
          Some labels
        end);
    verifier =
      (fun view ->
        let rid = fld view.my_label 0 and d = fld view.my_label 1 in
        let h_labels = List.map (lbl view) (h_nbrs view) in
        d >= 0
        && List.for_all (fun l -> fld l 0 = rid) h_labels
        && List.for_all
             (fun l -> fld l 1 = d - 1 || fld l 1 = d + 1)
             h_labels
        && List.length (List.filter (fun l -> fld l 1 = d - 1) h_labels)
           = (if d = 0 then 0 else 1)
        && (d > 0 || rid = view.vertex));
  }

let e_cycle_predicate inst =
  match inst.Verif.e with
  | None -> false
  | Some (a, b) ->
      Verif.in_h inst a b
      &&
      let hme = Verif.h_minus_e inst in
      (Props.bfs_dist hme a).(b) < max_int

let e_cycle =
  {
    name = "e-cycle";
    predicate = e_cycle_predicate;
    prover =
      (fun inst ->
        if not (e_cycle_predicate inst) then None
        else begin
          let a, b = Option.get inst.Verif.e in
          let hme = Verif.h_minus_e inst in
          (* the cycle: a shortest a-b path in H−e, plus e *)
          let parent = Props.bfs_tree hme a in
          let rec walk v acc = if v = a then a :: acc else walk parent.(v) (v :: acc) in
          let cycle = walk b [] in
          Some (cycle_fields inst cycle)
        end);
    verifier =
      (fun view ->
        check_cycle_marking view ~d_at:0
        &&
        match view.e_endpoint with
        | None -> true
        | Some u ->
            fld view.my_label 0 = 0
            && fld (lbl view u) 0 = 0
            && List.mem u (h_nbrs view));
  }

let not_e_cycle =
  {
    name = "not-e-cycle";
    predicate = (fun inst -> inst.Verif.e <> None && not (e_cycle_predicate inst));
    prover =
      (fun inst ->
        match inst.Verif.e with
        | None -> None
        | Some (a, b) ->
            if e_cycle_predicate inst then None
            else if not (Verif.in_h inst a b) then
              Some (Array.make (Graph.n inst.Verif.graph) [ 0; 0 ])
            else begin
              let hme = Verif.h_minus_e inst in
              let dist = Props.bfs_dist hme a in
              Some
                (Array.map (fun d -> [ 1; (if d = max_int then 1 else 0) ]) dist)
            end);
    verifier =
      (fun view ->
        let case = fld view.my_label 0 in
        all_g view (fun u -> fld (lbl view u) 0 = case)
        &&
        match case with
        | 0 -> (
            (* e is not in H *)
            match view.e_endpoint with
            | None -> true
            | Some u ->
                List.exists (fun (x, _, h) -> x = u && not h) view.neighbors)
        | 1 ->
            check_mono_flags view ~flag_at:1 ~spare_e:true ~over:`H
            && (match view.e_endpoint with
               | None -> true
               | Some u -> fld view.my_label 1 <> fld (lbl view u) 1)
        | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Bipartiteness                                                       *)
(* ------------------------------------------------------------------ *)

let bipartite =
  {
    name = "bipartite";
    predicate = (fun inst -> Props.is_bipartite (Verif.h_graph inst));
    prover =
      (fun inst ->
        match Props.bipartition (Verif.h_graph inst) with
        | None -> None
        | Some coloring ->
            Some (Array.map (fun c -> [ (if c then 1 else 0) ]) coloring));
    verifier =
      (fun view ->
        let c = fld view.my_label 0 in
        (c = 0 || c = 1)
        && List.for_all (fun u -> fld (lbl view u) 0 <> c) (h_nbrs view));
  }

let not_bipartite =
  (* fields: [rid; d; parent; mark; rid2; d2]; (rid, d, parent) is an
     exact-depth forest of H, and two adjacent marked vertices with equal
     depth parity witness an odd closed walk *)
  {
    name = "not-bipartite";
    predicate = (fun inst -> not (Props.is_bipartite (Verif.h_graph inst)));
    prover =
      (fun inst ->
        let hg = Verif.h_graph inst in
        if Props.is_bipartite hg then None
        else begin
          let n = Graph.n hg in
          let comp, _ = Props.components hg in
          let root = Array.make n (-1) in
          for v = n - 1 downto 0 do
            root.(comp.(v)) <- v
          done;
          let dist = Array.make n 0 and parent = Array.make n (-1) in
          for v = 0 to n - 1 do
            if root.(comp.(v)) = v then begin
              let d = Props.bfs_dist hg v and p = Props.bfs_tree hg v in
              for u = 0 to n - 1 do
                if comp.(u) = comp.(v) then begin
                  dist.(u) <- d.(u);
                  parent.(u) <- p.(u)
                end
              done
            end
          done;
          (* find an H edge with equal-parity endpoints *)
          let witness = ref None in
          Graph.iter_edges
            (fun u v _ ->
              if !witness = None && (dist.(u) + dist.(v)) mod 2 = 0 then
                witness := Some (u, v))
            hg;
          match !witness with
          | None -> None (* cannot happen: hg is non-bipartite *)
          | Some (wu, wv) ->
              let p2 = pointer_fields inst.Verif.graph wu in
              Some
                (Array.init n (fun v ->
                     [
                       root.(comp.(v));
                       dist.(v);
                       parent.(v);
                       (if v = wu || v = wv then 1 else 0);
                     ]
                     @ p2.(v)))
        end);
    verifier =
      (fun view ->
        let rid = fld view.my_label 0
        and d = fld view.my_label 1
        and parent = fld view.my_label 2
        and mark = fld view.my_label 3 in
        let h = h_nbrs view in
        d >= 0
        && List.for_all (fun u -> fld (lbl view u) 0 = rid) h
        && (if d = 0 then rid = view.vertex
            else List.mem parent h && fld (lbl view parent) 1 = d - 1)
        && (mark = 0 || mark = 1)
        && (mark = 0
           || List.exists
                (fun u ->
                  fld (lbl view u) 3 = 1 && (fld (lbl view u) 1 + d) mod 2 = 0)
                h)
        && check_pointer view ~rid_at:4 ~d_at:5 ~root_ok:(fun () ->
               fld view.my_label 3 = 1));
  }

(* ------------------------------------------------------------------ *)
(* s-t connectivity and separations                                    *)
(* ------------------------------------------------------------------ *)

let require_st inst = inst.Verif.s <> None && inst.Verif.t <> None

let st_connected_predicate inst =
  require_st inst
  &&
  let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
  (Props.bfs_dist (Verif.h_graph inst) s).(t) < max_int

let dist_labels g s =
  Array.map (fun d -> [ (if d = max_int then inf else d) ]) (Props.bfs_dist g s)

let st_connected =
  {
    name = "st-connected";
    predicate = st_connected_predicate;
    prover =
      (fun inst ->
        if not (st_connected_predicate inst) then None
        else Some (dist_labels (Verif.h_graph inst) (Option.get inst.Verif.s)));
    verifier =
      (fun view ->
        let d = fld view.my_label 0 in
        d >= 0
        && (not view.is_s || d = 0)
        && (d <> 0 || view.is_s)
        && (not view.is_t || d < inf)
        && (d = 0 || d >= inf
           || List.exists (fun u -> fld (lbl view u) 0 = d - 1) (h_nbrs view)));
  }

let flag_separation_scheme ~name ~over ~spare_e ~predicate ~component_of =
  {
    name;
    predicate;
    prover =
      (fun inst ->
        if not (predicate inst) then None
        else begin
          let reach = component_of inst in
          Some (Array.map (fun r -> [ (if r then 0 else 1) ]) reach)
        end);
    verifier =
      (fun view ->
        check_mono_flags view ~flag_at:0 ~spare_e ~over
        && (not view.is_s || fld view.my_label 0 = 0)
        && (not view.is_t || fld view.my_label 0 = 1));
  }

let reachable_from_s sub inst =
  let s = Option.get inst.Verif.s in
  let dist = Props.bfs_dist (sub inst) s in
  Array.map (fun d -> d < max_int) dist

let not_st_connected =
  flag_separation_scheme ~name:"not-st-connected" ~over:`H ~spare_e:false
    ~predicate:(fun inst -> require_st inst && not (st_connected_predicate inst))
    ~component_of:(reachable_from_s Verif.h_graph)

let edge_on_all_paths =
  flag_separation_scheme ~name:"edge-on-all-paths" ~over:`H ~spare_e:true
    ~predicate:(fun inst ->
      require_st inst && inst.Verif.e <> None
      &&
      let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
      (Props.bfs_dist (Verif.h_minus_e inst) s).(t) = max_int)
    ~component_of:(reachable_from_s Verif.h_minus_e)

let not_edge_on_all_paths =
  {
    name = "not-edge-on-all-paths";
    predicate =
      (fun inst ->
        require_st inst && inst.Verif.e <> None
        &&
        let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
        (Props.bfs_dist (Verif.h_minus_e inst) s).(t) < max_int);
    prover =
      (fun inst ->
        if
          not
            (require_st inst && inst.Verif.e <> None
            &&
            let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
            (Props.bfs_dist (Verif.h_minus_e inst) s).(t) < max_int)
        then None
        else Some (dist_labels (Verif.h_minus_e inst) (Option.get inst.Verif.s)));
    verifier =
      (fun view ->
        let d = fld view.my_label 0 in
        d >= 0
        && (not view.is_s || d = 0)
        && (d <> 0 || view.is_s)
        && (not view.is_t || d < inf)
        && (d = 0 || d >= inf
           || List.exists
                (fun u -> fld (lbl view u) 0 = d - 1)
                (List.filter
                   (fun u -> view.e_endpoint <> Some u)
                   (h_nbrs view))));
  }

let st_cut =
  flag_separation_scheme ~name:"st-cut" ~over:`Not_h ~spare_e:false
    ~predicate:(fun inst ->
      require_st inst
      &&
      let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
      (Props.bfs_dist (Verif.g_minus_h inst) s).(t) = max_int)
    ~component_of:(reachable_from_s Verif.g_minus_h)

let not_st_cut =
  {
    name = "not-st-cut";
    predicate =
      (fun inst ->
        require_st inst
        &&
        let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
        (Props.bfs_dist (Verif.g_minus_h inst) s).(t) < max_int);
    prover =
      (fun inst ->
        if
          not
            (require_st inst
            &&
            let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
            (Props.bfs_dist (Verif.g_minus_h inst) s).(t) < max_int)
        then None
        else Some (dist_labels (Verif.g_minus_h inst) (Option.get inst.Verif.s)));
    verifier =
      (fun view ->
        let d = fld view.my_label 0 in
        let non_h_nbrs =
          List.filter_map
            (fun (u, _, h) -> if h then None else Some u)
            view.neighbors
        in
        d >= 0
        && (not view.is_s || d = 0)
        && (d <> 0 || view.is_s)
        && (not view.is_t || d < inf)
        && (d = 0 || d >= inf
           || List.exists (fun u -> fld (lbl view u) 0 = d - 1) non_h_nbrs));
  }

(* ------------------------------------------------------------------ *)
(* Cut verification (no designated s, t)                               *)
(* ------------------------------------------------------------------ *)

let cut =
  {
    name = "cut";
    predicate = (fun inst -> not (Props.connected (Verif.g_minus_h inst)));
    prover =
      (fun inst ->
        let gmh = Verif.g_minus_h inst in
        if Props.connected gmh then None
        else begin
          let comp, _ = Props.components gmh in
          let flag = Array.map (fun c -> if c = comp.(0) then 0 else 1) comp in
          let root2 =
            let rec find v = if flag.(v) = 1 then v else find (v + 1) in
            find 0
          in
          let p1 = pointer_fields inst.Verif.graph 0
          and p2 = pointer_fields inst.Verif.graph root2 in
          Some
            (Array.init (Graph.n inst.Verif.graph) (fun v ->
                 (flag.(v) :: p1.(v)) @ p2.(v)))
        end);
    verifier =
      (fun view ->
        check_mono_flags view ~flag_at:0 ~spare_e:false ~over:`Not_h
        && check_pointer view ~rid_at:1 ~d_at:2 ~root_ok:(fun () ->
               fld view.my_label 0 = 0)
        && check_pointer view ~rid_at:3 ~d_at:4 ~root_ok:(fun () ->
               fld view.my_label 0 = 1));
  }

let not_cut =
  {
    name = "not-cut";
    predicate = (fun inst -> Props.connected (Verif.g_minus_h inst));
    prover =
      (fun inst ->
        let gmh = Verif.g_minus_h inst in
        if not (Props.connected gmh) then None
        else Some (Array.map (fun d -> [ 0; d ]) (Props.bfs_dist gmh 0)));
    verifier =
      (fun view ->
        let rid = fld view.my_label 0 and d = fld view.my_label 1 in
        let non_h =
          List.filter_map
            (fun (u, _, h) -> if h then None else Some u)
            view.neighbors
        in
        d >= 0
        && all_g view (fun u -> fld (lbl view u) 0 = rid)
        &&
        if d = 0 then rid = view.vertex
        else List.exists (fun u -> fld (lbl view u) 1 = d - 1) non_h);
  }

let not_spanning_tree =
  {
    name = "not-spanning-tree";
    predicate = (fun inst -> not (Props.is_tree (Verif.h_graph inst)));
    prover =
      (fun inst ->
        let hg = Verif.h_graph inst in
        if Props.is_tree hg then None
        else if not (Props.is_forest hg) then
          let core = two_core inst in
          Some (Array.map (fun l -> 0 :: l) (cycle_fields inst core))
        else Some (Array.map (fun l -> 1 :: l) (disconnection_fields inst)));
    verifier =
      (fun view ->
        let case = fld view.my_label 0 in
        all_g view (fun u -> fld (lbl view u) 0 = case)
        &&
        match case with
        | 0 -> check_cycle_marking view ~d_at:1
        | 1 -> check_disconnection view ~offset:1
        | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Hamiltonian cycle and simple path verification                      *)
(* ------------------------------------------------------------------ *)

let ham_cycle_predicate inst =
  let hg = Verif.h_graph inst in
  let n = Graph.n hg in
  n >= 3
  && List.for_all (fun v -> Graph.degree hg v = 2) (List.init n Fun.id)
  && Props.connected hg

let hamiltonian_cycle =
  {
    name = "hamiltonian-cycle";
    predicate = ham_cycle_predicate;
    prover =
      (fun inst ->
        if not (ham_cycle_predicate inst) then None
        else begin
          let hg = Verif.h_graph inst in
          let n = Graph.n hg in
          let idx = Array.make n (-1) in
          let rec walk v i prev =
            idx.(v) <- i;
            if i < n - 1 then begin
              match List.filter (fun u -> u <> prev) (Graph.neighbors hg v) with
              | u :: _ -> walk u (i + 1) v
              | [] -> assert false
            end
          in
          walk 0 0 (-1);
          Some (Array.map (fun i -> [ i ]) idx)
        end);
    verifier =
      (fun view ->
        let n = view.n in
        let idx = fld view.my_label 0 in
        let h = h_nbrs view in
        n >= 3 && idx >= 0 && idx < n
        && List.length h = 2
        && List.exists (fun u -> fld (lbl view u) 0 = (idx + 1) mod n) h
        && List.exists (fun u -> fld (lbl view u) 0 = (idx + n - 1) mod n) h);
  }

let not_hamiltonian_cycle =
  {
    name = "not-hamiltonian-cycle";
    predicate = (fun inst -> not (ham_cycle_predicate inst));
    prover =
      (fun inst ->
        if ham_cycle_predicate inst then None
        else begin
          let g = inst.Verif.graph in
          let n = Graph.n g in
          let bad =
            List.find_opt
              (fun v -> Verif.h_degree inst v <> 2)
              (List.init n Fun.id)
          in
          match bad with
          | Some w ->
              let p = pointer_fields g w in
              Some (Array.map (fun l -> 0 :: l) p)
          | None -> Some (Array.map (fun l -> 1 :: l) (disconnection_fields inst))
        end);
    verifier =
      (fun view ->
        let case = fld view.my_label 0 in
        all_g view (fun u -> fld (lbl view u) 0 = case)
        &&
        match case with
        | 0 ->
            check_pointer view ~rid_at:1 ~d_at:2 ~root_ok:(fun () ->
                h_degree view <> 2)
            || view.n < 3
        | 1 -> check_disconnection view ~offset:1
        | _ -> false);
  }

let simple_path_predicate inst =
  let hg = Verif.h_graph inst in
  Graph.m hg >= 1
  && Graph.max_degree hg <= 2
  && Props.is_forest hg
  &&
  let touched =
    List.filter (fun v -> Graph.degree hg v > 0) (List.init (Graph.n hg) Fun.id)
  in
  let sub, _ = Graph.induced hg touched in
  Props.connected sub

let simple_path =
  (* fields: [idx; startid; rid2; d2] *)
  {
    name = "simple-path";
    predicate = simple_path_predicate;
    prover =
      (fun inst ->
        if not (simple_path_predicate inst) then None
        else begin
          let hg = Verif.h_graph inst in
          let n = Graph.n hg in
          let start =
            List.find (fun v -> Graph.degree hg v = 1) (List.init n Fun.id)
          in
          let dist = Props.bfs_dist hg start in
          let p2 = pointer_fields inst.Verif.graph start in
          Some
            (Array.init n (fun v ->
                 [ (if dist.(v) = max_int then -1 else dist.(v)); start ]
                 @ p2.(v)))
        end);
    verifier =
      (fun view ->
        let idx = fld view.my_label 0 and startid = fld view.my_label 1 in
        let h = h_nbrs view in
        let hdeg = List.length h in
        let nbr_idx u = fld (lbl view u) 0 in
        all_g view (fun u -> fld (lbl view u) 1 = startid)
        && hdeg <= 2
        && (match (hdeg, idx) with
           | 0, i -> i = -1
           | 1, 0 ->
               startid = view.vertex
               && List.for_all (fun u -> nbr_idx u = 1) h
           | 1, i -> i > 0 && List.for_all (fun u -> nbr_idx u = i - 1) h
           | 2, i ->
               i > 0
               && List.exists (fun u -> nbr_idx u = i - 1) h
               && List.exists (fun u -> nbr_idx u = i + 1) h
           | _ -> false)
        && check_pointer view ~rid_at:2 ~d_at:3 ~root_ok:(fun () ->
               fld view.my_label 0 = 0 && startid = view.vertex));
  }

let not_simple_path =
  {
    name = "not-simple-path";
    predicate = (fun inst -> not (simple_path_predicate inst));
    prover =
      (fun inst ->
        if simple_path_predicate inst then None
        else begin
          let g = inst.Verif.graph in
          let hg = Verif.h_graph inst in
          let n = Graph.n g in
          if Graph.m hg = 0 then Some (Array.make n [ 3 ])
          else if not (Props.is_forest hg) then
            Some (Array.map (fun l -> 0 :: l) (cycle_fields inst (two_core inst)))
          else
            match
              List.find_opt (fun v -> Graph.degree hg v >= 3) (List.init n Fun.id)
            with
            | Some w ->
                Some (Array.map (fun l -> 1 :: l) (pointer_fields g w))
            | None ->
                (* a forest of degree ≤ 2 that is not one path: at least two
                   edge components *)
                let comp, _ = Props.components hg in
                let with_edges c =
                  List.find
                    (fun v -> comp.(v) = c && Graph.degree hg v > 0)
                    (List.init n Fun.id)
                in
                let comps_with_edges =
                  List.sort_uniq compare
                    (List.filter_map
                       (fun v -> if Graph.degree hg v > 0 then Some comp.(v) else None)
                       (List.init n Fun.id))
                in
                (match comps_with_edges with
                | c1 :: c2 :: _ ->
                    let r1 = with_edges c1 and r2 = with_edges c2 in
                    let flag = Array.map (fun c -> if c = c1 then 0 else 1) comp in
                    let p1 = pointer_fields g r1 and p2 = pointer_fields g r2 in
                    Some
                      (Array.init n (fun v -> ((2 :: [ flag.(v) ]) @ p1.(v)) @ p2.(v)))
                | _ -> None)
        end);
    verifier =
      (fun view ->
        let case = fld view.my_label 0 in
        all_g view (fun u -> fld (lbl view u) 0 = case)
        &&
        match case with
        | 3 -> h_degree view = 0
        | 0 -> check_cycle_marking view ~d_at:1
        | 1 ->
            check_pointer view ~rid_at:1 ~d_at:2 ~root_ok:(fun () ->
                h_degree view >= 3)
        | 2 ->
            let flag = fld view.my_label 1 in
            (flag = 0 || flag = 1)
            && List.for_all (fun u -> fld (lbl view u) 1 = flag) (h_nbrs view)
            && check_pointer view ~rid_at:2 ~d_at:3 ~root_ok:(fun () ->
                   fld view.my_label 1 = 0 && h_degree view >= 1)
            && check_pointer view ~rid_at:4 ~d_at:5 ~root_ok:(fun () ->
                   fld view.my_label 1 = 1 && h_degree view >= 1)
        | _ -> false);
  }

(* ------------------------------------------------------------------ *)
(* Matching                                                            *)
(* ------------------------------------------------------------------ *)

let matching_ge k =
  (* fields: [mate; rid; d; parent; cnt] — cnt counts matched vertices *)
  {
    name = Printf.sprintf "matching-ge-%d" k;
    predicate =
      (fun inst -> Ch_solvers.Matching.nu (Verif.h_graph inst) >= k);
    prover =
      (fun inst ->
        let hg = Verif.h_graph inst in
        let matching = Ch_solvers.Matching.maximum_matching hg in
        if List.length matching < k then None
        else begin
          let matching =
            List.filteri (fun i _ -> i < k) matching
          in
          let n = Graph.n hg in
          let mate = Array.make n (-1) in
          List.iter
            (fun (u, v) ->
              mate.(u) <- v;
              mate.(v) <- u)
            matching;
          let counted =
            counted_tree_fields inst.Verif.graph 0 ~contribution:(fun v ->
                if mate.(v) >= 0 then 1 else 0)
          in
          Some (Array.init n (fun v -> mate.(v) :: counted.(v)))
        end);
    verifier =
      (fun view ->
        let mate = fld view.my_label 0 in
        (mate = -1
        || (List.mem mate (h_nbrs view) && fld (lbl view mate) 0 = view.vertex))
        && check_counted_tree view ~rid_at:1 ~d_at:2 ~parent_at:3 ~cnt_at:4
             ~contribution:(fun v -> if fld v.my_label 0 >= 0 then 1 else 0)
             ~root_ok:(fun cnt -> cnt >= 2 * k));
  }

let matching_lt k =
  (* fields: [in_u; crid; cd; cparent; csize; codd; rid2; d2; parent2;
     cnt_odd; cnt_u] *)
  let deficiency_fields inst u_set =
    let g = inst.Verif.graph in
    let n = Graph.n g in
    let in_u = Array.make n 0 in
    List.iter (fun v -> in_u.(v) <- 1) u_set;
    let rest = List.filter (fun v -> in_u.(v) = 0) (List.init n Fun.id) in
    let sub, map = Graph.induced g rest in
    let comp, ncomp = Props.components sub in
    (* per component: a rooted counted tree *)
    let crid = Array.make n (-1)
    and cd = Array.make n (-1)
    and cparent = Array.make n (-1)
    and csize = Array.make n 0
    and codd = Array.make n 0 in
    let sizes = Array.make ncomp 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    for c = 0 to ncomp - 1 do
      let root_sub =
        let rec find i = if comp.(i) = c then i else find (i + 1) in
        find 0
      in
      let dist = Props.bfs_dist sub root_sub and par = Props.bfs_tree sub root_sub in
      let order =
        List.sort
          (fun a b -> compare dist.(b) dist.(a))
          (List.filter (fun v -> comp.(v) = c) (List.init (Graph.n sub) Fun.id))
      in
      let cnt = Array.make (Graph.n sub) 0 in
      List.iter
        (fun v ->
          cnt.(v) <- cnt.(v) + 1;
          if par.(v) >= 0 then cnt.(par.(v)) <- cnt.(par.(v)) + cnt.(v))
        order;
      List.iter
        (fun v ->
          let orig = map.(v) in
          crid.(orig) <- map.(root_sub);
          cd.(orig) <- dist.(v);
          cparent.(orig) <- (if par.(v) >= 0 then map.(par.(v)) else -1);
          csize.(orig) <- cnt.(v);
          codd.(orig) <- sizes.(c) mod 2)
        (List.filter (fun v -> comp.(v) = c) (List.init (Graph.n sub) Fun.id))
    done;
    let counted =
      counted_tree_fields g 0 ~contribution:(fun v ->
          if in_u.(v) = 0 && cd.(v) = 0 && codd.(v) = 1 then 1 else 0)
    in
    let counted_u =
      counted_tree_fields g 0 ~contribution:(fun v -> in_u.(v))
    in
    Array.init n (fun v ->
        [ in_u.(v); crid.(v); cd.(v); cparent.(v); csize.(v); codd.(v) ]
        @ counted.(v)
        @ [ List.nth counted_u.(v) 3 ])
  in
  {
    name = Printf.sprintf "matching-lt-%d" k;
    predicate = (fun inst -> Ch_solvers.Matching.nu (Verif.h_graph inst) < k);
    prover =
      (fun inst ->
        (* the scheme certifies ν(G) < k, so it applies when H = G *)
        let g = inst.Verif.graph in
        if Ch_solvers.Matching.nu g >= k then None
        else begin
          let u_set = Ch_solvers.Matching.tutte_berge_witness g in
          Some (deficiency_fields inst u_set)
        end);
    verifier =
      (fun view ->
        let f i = fld view.my_label i in
        let in_u = f 0 in
        (in_u = 0 || in_u = 1)
        && (if in_u = 1 then true
            else begin
              let crid = f 1 and cd = f 2 and cparent = f 3 and csize = f 4 and codd = f 5 in
              let comp_nbrs =
                List.filter (fun u -> fld (lbl view u) 0 = 0) (g_nbrs view)
              in
              let children =
                List.filter
                  (fun u ->
                    fld (lbl view u) 3 = view.vertex && fld (lbl view u) 2 = cd + 1)
                  comp_nbrs
              in
              let sum =
                List.fold_left (fun acc u -> acc + fld (lbl view u) 4) 1 children
              in
              cd >= 0
              && List.for_all
                   (fun u -> fld (lbl view u) 1 = crid && fld (lbl view u) 5 = codd)
                   comp_nbrs
              && csize = sum
              && (if cd = 0 then crid = view.vertex && csize mod 2 = codd
                  else
                    List.mem cparent comp_nbrs
                    && fld (lbl view cparent) 2 = cd - 1)
            end)
        &&
        (* the global counting tree: fields 6..9 for the odd count, 10 for
           the U count sharing the same tree shape *)
        let rid2 = f 6 and d2 = f 7 and parent2 = f 8 and cnt_odd = f 9 and cnt_u = f 10 in
        let children =
          List.filter
            (fun u ->
              fld (lbl view u) 8 = view.vertex && fld (lbl view u) 7 = d2 + 1)
            (g_nbrs view)
        in
        let odd_contrib = if in_u = 0 && f 2 = 0 && f 5 = 1 then 1 else 0 in
        let sum_odd =
          List.fold_left (fun acc u -> acc + fld (lbl view u) 9) odd_contrib children
        in
        let sum_u =
          List.fold_left (fun acc u -> acc + fld (lbl view u) 10) in_u children
        in
        d2 >= 0
        && all_g view (fun u -> fld (lbl view u) 6 = rid2)
        && cnt_odd = sum_odd && cnt_u = sum_u
        && (if d2 = 0 then
              rid2 = view.vertex && cnt_odd - cnt_u >= view.n - (2 * k) + 1
            else
              List.mem parent2 (g_nbrs view)
              && fld (lbl view parent2) 7 = d2 - 1));
  }

(* ------------------------------------------------------------------ *)
(* Weighted s-t distance                                               *)
(* ------------------------------------------------------------------ *)

let wdist inst =
  let s = Option.get inst.Verif.s and t = Option.get inst.Verif.t in
  (Props.dijkstra inst.Verif.graph s).(t)

let wdist_ge k =
  {
    name = Printf.sprintf "wdist-ge-%d" k;
    predicate = (fun inst -> require_st inst && wdist inst >= k);
    prover =
      (fun inst ->
        if not (require_st inst && wdist inst >= k) then None
        else begin
          let d = Props.dijkstra inst.Verif.graph (Option.get inst.Verif.s) in
          Some (Array.map (fun x -> [ (if x = max_int then inf else x) ]) d)
        end);
    verifier =
      (fun view ->
        (* feasible potentials: d(v) ≤ d(u) + w(u,v) lower-bound the true
           distance at t *)
        let d = fld view.my_label 0 in
        d >= 0
        && (not view.is_s || d = 0)
        && (not view.is_t || d >= k)
        && List.for_all
             (fun (u, w, _) -> d <= min inf (fld (lbl view u) 0 + w))
             view.neighbors);
  }

let wdist_lt k =
  {
    name = Printf.sprintf "wdist-lt-%d" k;
    predicate = (fun inst -> require_st inst && wdist inst < k);
    prover =
      (fun inst ->
        if not (require_st inst && wdist inst < k) then None
        else begin
          let d = Props.dijkstra inst.Verif.graph (Option.get inst.Verif.s) in
          Some (Array.map (fun x -> [ (if x = max_int then inf else x) ]) d)
        end);
    verifier =
      (fun view ->
        (* a witness chain: some neighbor explains d(v), so d(t) upper
           bounds the true distance *)
        let d = fld view.my_label 0 in
        d >= 0
        && (d <> 0 || view.is_s)
        && (not view.is_s || d = 0)
        && (not view.is_t || d < k)
        && (d = 0 || d >= inf
           || List.exists
                (fun (u, w, _) -> fld (lbl view u) 0 + w <= d)
                view.neighbors));
  }

let all_named =
  [
    ("spanning-tree", spanning_tree);
    ("not-spanning-tree", not_spanning_tree);
    ("connected", connected);
    ("not-connected", not_connected);
    ("has-cycle", has_cycle);
    ("acyclic", acyclic);
    ("e-cycle", e_cycle);
    ("not-e-cycle", not_e_cycle);
    ("bipartite", bipartite);
    ("not-bipartite", not_bipartite);
    ("st-connected", st_connected);
    ("not-st-connected", not_st_connected);
    ("cut", cut);
    ("not-cut", not_cut);
    ("edge-on-all-paths", edge_on_all_paths);
    ("not-edge-on-all-paths", not_edge_on_all_paths);
    ("st-cut", st_cut);
    ("not-st-cut", not_st_cut);
    ("hamiltonian-cycle", hamiltonian_cycle);
    ("not-hamiltonian-cycle", not_hamiltonian_cycle);
    ("simple-path", simple_path);
    ("not-simple-path", not_simple_path);
  ]
