(** Proof labeling schemes (Section 5.2.2): a prover assigns each vertex a
    label; a local verifier at each vertex sees only its own label, its
    neighbors' labels, and its local view of the instance.  Completeness:
    true instances admit labels accepted everywhere.  Soundness: on false
    instances every labeling is rejected somewhere (sampled empirically by
    {!check_soundness}; several schemes carry structural proofs in their
    documentation). *)

type label = int list

type labeling = label array

type view = {
  vertex : int;
  n : int;
  neighbors : (int * int * bool) list;  (** (neighbor, edge weight, in H) *)
  my_label : label;
  label_of : int -> label;  (** neighbors only *)
  is_s : bool;
  is_t : bool;
  e_endpoint : int option;  (** the other endpoint of e when incident *)
}

type scheme = {
  name : string;
  predicate : Verif.t -> bool;  (** ground truth, via the exact solvers *)
  prover : Verif.t -> labeling option;  (** None when the predicate fails *)
  verifier : view -> bool;
}

val view_of : Verif.t -> labeling -> int -> view

val accepts : scheme -> Verif.t -> labeling -> bool
(** All vertices accept. *)

val max_label_bits : labeling -> int
(** Size of the largest label: sum over fields of their widths. *)

val check_completeness : scheme -> Verif.t -> bool
(** predicate ⟹ the prover's labeling is accepted (vacuous otherwise). *)

val check_soundness : seed:int -> attempts:int -> scheme -> Verif.t -> bool
(** ¬predicate ⟹ the prover declines, and random labelings (including
    mutations of labelings for related true instances) are rejected. *)
