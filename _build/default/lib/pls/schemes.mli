(** The proof labeling schemes of Section 5.2: every verification problem
    of Lemma 5.1 (both directions), matching ≥ k / < k (Claim 5.12, the
    latter via Tutte–Berge), and weighted s-t distance (Claim 5.13).  All
    schemes use O(log n)-bit labels, which by Theorem 5.1 bounds the
    nondeterministic communication of the corresponding predicates by
    O(|E_cut|·log n). *)

val spanning_tree : Pls.scheme

val not_spanning_tree : Pls.scheme

val connected : Pls.scheme
(** H is connected and spans every vertex. *)

val not_connected : Pls.scheme

val has_cycle : Pls.scheme

val acyclic : Pls.scheme

val e_cycle : Pls.scheme
(** H contains a cycle through the designated edge e. *)

val not_e_cycle : Pls.scheme

val bipartite : Pls.scheme

val not_bipartite : Pls.scheme

val st_connected : Pls.scheme

val not_st_connected : Pls.scheme

val cut : Pls.scheme
(** H is a cut: G \ H is disconnected. *)

val not_cut : Pls.scheme

val edge_on_all_paths : Pls.scheme
(** s and t are separated in H \ {e}. *)

val not_edge_on_all_paths : Pls.scheme

val st_cut : Pls.scheme
(** s and t are separated in G \ H. *)

val not_st_cut : Pls.scheme

val hamiltonian_cycle : Pls.scheme

val not_hamiltonian_cycle : Pls.scheme

val simple_path : Pls.scheme
(** H (as an edge set) is a nonempty simple path. *)

val not_simple_path : Pls.scheme

val matching_ge : int -> Pls.scheme
(** The marked edges contain a matching of size ≥ k … in fact H itself is
    verified to be a matching of size ≥ k. *)

val matching_lt : int -> Pls.scheme
(** ν(G) < k, certified by a Tutte–Berge witness set U. *)

val wdist_ge : int -> Pls.scheme
(** weighted dist(s,t) ≥ k (labels are feasible potentials). *)

val wdist_lt : int -> Pls.scheme

val all_named : (string * Pls.scheme) list
(** Every non-parameterized scheme, for table-driven tests. *)
