open Ch_graph

type label = int list

type labeling = label array

type view = {
  vertex : int;
  n : int;
  neighbors : (int * int * bool) list;
  my_label : label;
  label_of : int -> label;
  is_s : bool;
  is_t : bool;
  e_endpoint : int option;
}

type scheme = {
  name : string;
  predicate : Verif.t -> bool;
  prover : Verif.t -> labeling option;
  verifier : view -> bool;
}

let view_of inst labeling v =
  let g = inst.Verif.graph in
  let neighbors =
    List.map (fun (u, w) -> (u, w, Verif.in_h inst v u)) (Graph.neighbors_w g v)
  in
  let nbr_set = List.map (fun (u, _, _) -> u) neighbors in
  {
    vertex = v;
    n = Graph.n g;
    neighbors;
    my_label = labeling.(v);
    label_of =
      (fun u ->
        if not (List.mem u nbr_set) then
          invalid_arg "Pls: verifier read a non-neighbor label"
        else labeling.(u));
    is_s = inst.Verif.s = Some v;
    is_t = inst.Verif.t = Some v;
    e_endpoint =
      (match inst.Verif.e with
      | Some (a, b) when a = v -> Some b
      | Some (a, b) when b = v -> Some a
      | _ -> None);
  }

let accepts scheme inst labeling =
  let n = Graph.n inst.Verif.graph in
  if Array.length labeling <> n then false
  else begin
    let ok = ref true in
    for v = 0 to n - 1 do
      if not (scheme.verifier (view_of inst labeling v)) then ok := false
    done;
    !ok
  end

let field_bits x =
  let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 (abs x) + 1

let max_label_bits labeling =
  Array.fold_left
    (fun acc label ->
      max acc (List.fold_left (fun b f -> b + field_bits f) 0 label))
    0 labeling

let check_completeness scheme inst =
  if not (scheme.predicate inst) then true
  else
    match scheme.prover inst with
    | None -> false
    | Some labeling -> accepts scheme inst labeling

let check_soundness ~seed ~attempts scheme inst =
  if scheme.predicate inst then true
  else if scheme.prover inst <> None then false
  else begin
    let rng = Random.State.make [| seed |] in
    let n = Graph.n inst.Verif.graph in
    let random_labeling width =
      Array.init n (fun _ ->
          List.init width (fun _ -> Random.State.int rng (2 * n)))
    in
    let candidates =
      List.concat_map
        (fun width -> List.init attempts (fun _ -> random_labeling width))
        [ 1; 2; 3; 4 ]
    in
    List.for_all (fun labeling -> not (accepts scheme inst labeling)) candidates
  end
