open Ch_graph

(** Instances of the Section 5.2.3 verification problems: a graph G with a
    marked subgraph H (a subset of G's edges), and optionally designated
    vertices s, t and a designated edge e. *)

type t = {
  graph : Graph.t;
  h : (int * int) list;  (** normalized u < v *)
  s : int option;
  t : int option;
  e : (int * int) option;
}

val make : ?s:int -> ?t:int -> ?e:int * int -> Graph.t -> h:(int * int) list -> t
(** Validates that the marked edges (and [e]) are edges of the graph. *)

val in_h : t -> int -> int -> bool

val h_graph : t -> Graph.t
(** The subgraph (V, H). *)

val h_minus_e : t -> Graph.t
(** (V, H \ {e}).  @raise Invalid_argument when [e] is absent. *)

val g_minus_h : t -> Graph.t

val h_degree : t -> int -> int

val random_subinstance : seed:int -> ?density:float -> Graph.t -> t
(** Mark each edge independently into H. *)
