lib/pls/schemes.mli: Pls
