lib/pls/verif.mli: Ch_graph Graph
