lib/pls/pls.ml: Array Ch_graph Graph List Random Verif
