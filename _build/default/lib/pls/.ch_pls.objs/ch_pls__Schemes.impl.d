lib/pls/schemes.ml: Array Ch_graph Ch_solvers Fun Graph List Option Pls Printf Props Queue Verif
