lib/pls/verif.ml: Ch_graph Graph List Option Random
