lib/pls/pls.mli: Verif
