lib/congest/bfs.mli: Ch_graph Graph Network
