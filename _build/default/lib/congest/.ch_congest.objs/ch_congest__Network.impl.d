lib/congest/network.ml: Array Ch_graph Graph List Printf Random
