lib/congest/encode.ml: Stdlib
