lib/congest/mis_greedy.ml: Array Ch_graph Fun Graph List Network
