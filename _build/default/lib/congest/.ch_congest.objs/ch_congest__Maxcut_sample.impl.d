lib/congest/maxcut_sample.ml: Array Ch_graph Ch_solvers Gather Graph Maxcut Network Random
