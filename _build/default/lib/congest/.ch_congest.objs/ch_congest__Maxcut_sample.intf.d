lib/congest/maxcut_sample.mli: Ch_graph Graph Network
