lib/congest/leader.mli: Ch_graph Graph Network
