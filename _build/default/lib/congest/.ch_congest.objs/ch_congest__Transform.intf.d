lib/congest/transform.mli: Ch_graph Digraph Graph
