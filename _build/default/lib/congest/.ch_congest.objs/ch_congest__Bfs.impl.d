lib/congest/bfs.ml: Array Ch_graph Encode Graph List Network Option
