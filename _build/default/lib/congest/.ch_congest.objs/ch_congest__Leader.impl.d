lib/congest/leader.ml: Array Ch_graph Encode Graph List Network
