lib/congest/mds_greedy.mli: Ch_graph Graph Network
