lib/congest/transform.ml: Ch_graph Ch_solvers Digraph Graph Hamilton
