lib/congest/encode.mli:
