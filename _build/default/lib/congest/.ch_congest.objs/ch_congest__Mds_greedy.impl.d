lib/congest/mds_greedy.ml: Array Ch_graph Encode Fun Graph List Network
