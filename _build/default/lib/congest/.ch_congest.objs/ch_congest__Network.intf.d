lib/congest/network.mli: Ch_graph Graph Random
