lib/congest/gather.ml: Array Ch_graph Encode Graph List Network Option
