lib/congest/gather.mli: Ch_graph Graph Network
