lib/congest/mis_greedy.mli: Ch_graph Graph Network
