(** Message-size accounting: the number of bits of the fixed-width
    encodings the CONGEST algorithms charge for. *)

val int_bits : max:int -> int
(** Width of an integer field holding values in [0, max]. *)

val id_bits : n:int -> int
(** Width of a vertex id in an n-vertex network. *)
