open Ch_graph

(** Theorem 2.9: a (1−ε)-approximation of the (unweighted) maximum cut in
    Õ(n) rounds.  Every edge is sampled independently with probability p
    (by its lower-id endpoint), the sampled subgraph is gathered at a
    root, solved exactly there, and c*_p / p is the estimate
    (Lemma 2.5, [51]). *)

type result = {
  estimate : int;  (** ⌊c*_p / p⌋, the (1−ε)-approximation of c*(G) *)
  sample_optimum : int;  (** c*_p, the exact max cut of the sample *)
  sampled_edges : int;
  stats : Network.stats;
}

val sample_probability : ?s:int -> Graph.t -> float
(** p = min(1, n·(log₂ n)^s / m), [s] defaulting to 1. *)

val run : ?seed:int -> ?p:float -> Graph.t -> result
(** Runs the full pipeline: per-vertex sampling, gather, exact solve at
    the root, broadcast.  The root solves on the whole vertex set, so the
    exact solver's limit applies: @raise Invalid_argument when n > 30. *)
