open Ch_graph

type state = { best : int; decided : int option }

let algo ~n : (state, int) Network.algo =
  {
    name = "leader";
    init = (fun ctx -> { best = ctx.Network.id; decided = None });
    round =
      (fun ctx ~round st inbox ->
        let best =
          List.fold_left (fun acc (_, b) -> min acc b) st.best inbox
        in
        let fresh = best < st.best in
        let decided = if round >= n then Some best else None in
        let outbox =
          if fresh || round = 0 then
            Array.to_list (Array.map (fun u -> (u, best)) ctx.Network.neighbors)
          else []
        in
        ({ best; decided }, outbox));
    msg_bits = (fun _ -> Encode.id_bits ~n);
    output = (fun st -> st.decided);
  }

let run g =
  let n = Graph.n g in
  let states, stats = Network.run g (algo ~n) in
  (Array.map (fun st -> st.best) states, stats)
