open Ch_graph

(** A synchronous CONGEST network simulator.

    Vertices run the same algorithm; in each round every vertex reads its
    inbox, updates its state, and sends at most one message per incident
    edge.  Message sizes are declared by the algorithm and checked against
    the bandwidth B(n) = [bandwidth_factor]·⌈log₂ n⌉ bits — the defining
    constraint of the model. *)

type ctx = {
  id : int;
  n : int;
  neighbors : int array;  (** sorted *)
  edge_weight : int -> int;  (** weight of the edge towards a neighbor *)
  vertex_weight : int;
  rng : Random.State.t;  (** private per-vertex randomness *)
}

type ('state, 'msg) algo = {
  name : string;
  init : ctx -> 'state;
  round : ctx -> round:int -> 'state -> (int * 'msg) list -> 'state * (int * 'msg) list;
      (** [round ctx ~round state inbox] returns the new state and the
          outbox as [(neighbor, message)] pairs.  The inbox lists
          [(sender, message)]. *)
  msg_bits : 'msg -> int;
  output : 'state -> int option;
      (** A vertex has terminated once its output is [Some _]. *)
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  bandwidth : int;
}

exception Bandwidth_exceeded of { algo : string; bits : int; bandwidth : int }

val bandwidth_for : ?factor:int -> int -> int
(** B(n) = factor·⌈log₂ n⌉, factor defaults to 8 (an "O(log n)-bit"
    message comfortably fits an edge id plus a weight). *)

val run :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  Graph.t ->
  ('state, 'msg) algo ->
  'state array * stats
(** Runs until every vertex has produced an output and no message is in
    flight, or [max_rounds] (default [20·n + 10·m + 100]) elapses —
    exceeding it raises [Failure]. *)

type cut_stats = { stats : stats; cut_bits : int; cut_messages : int }

val run_split :
  ?seed:int ->
  ?bandwidth_factor:int ->
  ?max_rounds:int ->
  side:bool array ->
  Graph.t ->
  ('state, 'msg) algo ->
  'state array * cut_stats
(** Like {!run} but also counts the bits carried by messages crossing the
    [side] partition — exactly what Alice and Bob must exchange to
    simulate the algorithm in the Theorem 1.1 reduction. *)
