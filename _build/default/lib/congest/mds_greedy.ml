open Ch_graph

type msg =
  | Dist of int
  | Status of bool  (* dominated? *)
  | Cand of int * int  (* best (coverage, id) seen in subtree / from root *)
  | Winner of int * int  (* (winner id, its coverage); coverage 0 = stop *)
  | Joined

type state = {
  dist : int option;
  announced : bool;
  parent : int;
  in_set : bool;
  dominated : bool;
  nbr_status : (int * bool) list;  (* neighbor -> dominated, this phase *)
  best : int * int;  (* aggregation register, (coverage, -id) order *)
  finished : bool;
}

(* phase layout after BFS (rounds 0..n-1):
   each phase occupies 2n + 3 rounds starting at base = n + phase*(2n+3):
     base          : everyone tells neighbors whether it is dominated
     base+1..n     : converge-cast of the max (coverage, id) towards root
     base+n+1..2n+1: root floods the winner down
     base+2n+2     : the winner joins and notifies its neighbors *)
let phase_layout ~n round =
  if round < n then `Bfs
  else begin
    let r = round - n in
    let span = (2 * n) + 3 in
    let phase = r / span and off = r mod span in
    if off = 0 then `Status phase
    else if off <= n then `Up (phase, off)
    else if off <= (2 * n) + 1 then `Down (phase, off - n - 1)
    else `Join phase
  end

let better (c1, i1) (c2, i2) = if c1 <> c2 then c1 > c2 else i1 < i2

let algo ~n : (state, msg) Network.algo =
  let all_nbrs ctx msg =
    Array.to_list (Array.map (fun u -> (u, msg)) ctx.Network.neighbors)
  in
  {
    name = "mds-greedy";
    init =
      (fun ctx ->
        {
          dist = (if ctx.Network.id = 0 then Some 0 else None);
          announced = false;
          parent = -1;
          in_set = false;
          dominated = false;
          nbr_status = [];
          best = (-1, -1);
          finished = false;
        });
    round =
      (fun ctx ~round st inbox ->
        match phase_layout ~n round with
        | `Bfs -> (
            let st =
              match st.dist with
              | Some _ -> st
              | None -> (
                  let dists =
                    List.filter_map
                      (function s, Dist d -> Some (s, d) | _ -> None)
                      inbox
                  in
                  match List.sort (fun (_, a) (_, b) -> compare a b) dists with
                  | (sender, d) :: _ ->
                      { st with dist = Some (d + 1); parent = sender }
                  | [] -> st)
            in
            match st.dist with
            | Some d when not st.announced ->
                ({ st with announced = true }, all_nbrs ctx (Dist d))
            | _ -> (st, []))
        | `Status _ ->
            (* a neighbor that joined at the end of the previous phase
               dominates us *)
            let dominated =
              st.dominated
              || List.exists (function _, Joined -> true | _ -> false) inbox
            in
            ( { st with dominated; nbr_status = []; best = (-1, -1) },
              all_nbrs ctx (Status dominated) )
        | `Up (_, off) ->
            let st =
              if off = 1 then begin
                (* record neighbor statuses, compute own coverage *)
                let nbr_status =
                  List.filter_map
                    (function s, Status d -> Some (s, d) | _ -> None)
                    inbox
                in
                let coverage =
                  (if st.dominated then 0 else 1)
                  + List.length (List.filter (fun (_, d) -> not d) nbr_status)
                in
                { st with nbr_status; best = (coverage, ctx.Network.id) }
              end
              else
                List.fold_left
                  (fun st (_, msg) ->
                    match msg with
                    | Cand (c, i) when better (c, i) st.best ->
                        { st with best = (c, i) }
                    | _ -> st)
                  st inbox
            in
            if st.parent >= 0 then
              (st, [ (st.parent, Cand (fst st.best, snd st.best)) ])
            else (st, [])
        | `Down (_, off) ->
            if off = 0 && st.parent < 0 then
              (* root announces the global winner *)
              (st, all_nbrs ctx (Winner (snd st.best, fst st.best)))
            else begin
              let winner =
                List.find_map
                  (function _, Winner (w, c) -> Some (w, c) | _ -> None)
                  inbox
              in
              match winner with
              | Some (w, c) ->
                  ({ st with best = (c, w) }, all_nbrs ctx (Winner (w, c)))
              | None -> (st, [])
            end
        | `Join _ ->
            let c, w = st.best in
            if c <= 0 then ({ st with finished = true }, [])
            else begin
              if w = ctx.Network.id then
                ( { st with in_set = true; dominated = true },
                  all_nbrs ctx Joined )
              else (st, [])
            end);
    msg_bits =
      (fun msg ->
        match msg with
        | Dist d -> 3 + Encode.int_bits ~max:(max 1 d)
        | Status _ -> 4
        | Cand (c, i) | Winner (i, c) ->
            3 + Encode.int_bits ~max:(max 1 c) + Encode.int_bits ~max:(max 1 i)
        | Joined -> 3);
    output = (fun st -> if st.finished then Some (if st.in_set then 1 else 0) else None);
  }

let run ?seed g =
  let n = Graph.n g in
  let states, stats = Network.run ?seed g (algo ~n) in
  let set =
    List.filter
      (fun v -> states.(v).in_set)
      (List.init n Fun.id)
  in
  (set, stats)
