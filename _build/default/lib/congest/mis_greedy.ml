open Ch_graph

type status = Undecided | In | Out

type state = { status : status; nbr_status : (int * status) list }

let algo : (state, int) Network.algo =
  let encode = function Undecided -> 0 | In -> 1 | Out -> 2 in
  let decode = function 0 -> Undecided | 1 -> In | _ -> Out in
  {
    name = "mis-greedy";
    init = (fun _ -> { status = Undecided; nbr_status = [] });
    round =
      (fun ctx ~round st inbox ->
        let nbr_status =
          if round = 0 then
            Array.to_list (Array.map (fun u -> (u, Undecided)) ctx.Network.neighbors)
          else
            List.map (fun (u, code) -> (u, decode code)) inbox
        in
        let status =
          match st.status with
          | In -> In
          | Out -> Out
          | Undecided ->
              if
                List.exists
                  (fun (u, s) -> s = In && u <> ctx.Network.id)
                  nbr_status
              then Out
              else if
                List.for_all
                  (fun (u, s) -> u > ctx.Network.id || s = Out)
                  nbr_status
              then In
              else Undecided
        in
        let outbox =
          Array.to_list
            (Array.map (fun u -> (u, encode status)) ctx.Network.neighbors)
        in
        (* stop broadcasting once everyone around has settled *)
        let outbox =
          if
            status <> Undecided && round > 0
            && List.for_all (fun (_, s) -> s <> Undecided) nbr_status
          then []
          else outbox
        in
        ({ status; nbr_status }, outbox));
    msg_bits = (fun _ -> 2);
    output =
      (fun st ->
        match st.status with
        | Undecided -> None
        | In -> Some 1
        | Out -> Some 0);
  }

let run ?seed g =
  let states, stats = Network.run ?seed g algo in
  let set =
    List.filter
      (fun v -> states.(v).status = In)
      (List.init (Graph.n g) Fun.id)
  in
  (set, stats)
