open Ch_graph

(** The folklore reductions of Section 2.2.2, as graph transforms plus the
    constant round overheads with which the paper simulates them in the
    CONGEST model (Lemmas 2.2 and 2.3). *)

val directed_to_undirected_hc : Digraph.t -> Graph.t
(** Each vertex v becomes (v_in, v_mid, v_out) = (3v, 3v+1, 3v+2); arcs
    (u,v) become edges {u_out, v_in}.  The result has a Hamiltonian cycle
    iff the input has a directed one. *)

val directed_to_undirected_overhead : int
(** Rounds of the simulated graph per round of the original (Lemma 2.2). *)

val undirected_to_directed_hc : Graph.t -> Digraph.t
(** Inverse of {!directed_to_undirected_hc} (the transform is injective):
    recovers the digraph from the 3n-vertex split graph.  Used to decide
    Hamiltonicity of the transformed graph through the Lemma 2.2
    equivalence instead of searching the 3× larger instance. *)

val hp_to_hc : Graph.t -> Graph.t
(** Inverse of {!hc_to_hp}: merges v₂ back into vertex 0 and drops s, t. *)

val hc_to_hp : Graph.t -> Graph.t * (int * int * int)
(** Splits vertex 0 into v₁ (= old 0) and v₂ (= n) and adds pendant
    s (= n+1) and t (= n+2): the result has a Hamiltonian path iff the
    input has a Hamiltonian cycle.  Returns the new graph and
    (v₂, s, t). *)

val hc_to_hp_overhead : int
(** Rounds per simulated round (Lemma 2.3; the O(D) leader election is
    additive, not multiplicative). *)

val hamiltonian_cycle_via_path : Graph.t -> bool
(** Decide Hamiltonian cycle by composing [hc_to_hp] with a Hamiltonian
    path decision — the Lemma 2.3 pipeline, with the search done by the
    exact solver. *)

val directed_cycle_via_undirected : Digraph.t -> bool
(** Decide directed Hamiltonian cycle through [directed_to_undirected_hc]
    — the Lemma 2.2 pipeline. *)
