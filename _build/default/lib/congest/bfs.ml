open Ch_graph

type state = { dist : int option; parent : int; announced : bool }

type result = { dist : int array; parent : int array }

let algo ~root ~n : (state, int) Network.algo =
  {
    name = "bfs";
    init =
      (fun ctx ->
        if ctx.Network.id = root then
          { dist = Some 0; parent = -1; announced = false }
        else { dist = None; parent = -1; announced = false });
    round =
      (fun ctx ~round:_ st inbox ->
        let st =
          match st.dist with
          | Some _ -> st
          | None -> (
              match
                List.sort (fun (_, a) (_, b) -> compare a b) inbox
              with
              | (sender, d) :: _ -> { st with dist = Some (d + 1); parent = sender }
              | [] -> st)
        in
        match st.dist with
        | Some d when not st.announced ->
            ( { st with announced = true },
              Array.to_list (Array.map (fun u -> (u, d)) ctx.Network.neighbors) )
        | _ -> (st, []));
    msg_bits = (fun _ -> Encode.int_bits ~max:n);
    output = (fun st -> st.dist);
  }

let run ?(root = 0) g =
  let states, stats = Network.run g (algo ~root ~n:(Graph.n g)) in
  let dist = Array.map (fun (st : state) -> Option.get st.dist) states in
  let parent = Array.map (fun (st : state) -> st.parent) states in
  ({ dist; parent }, stats)
