open Ch_graph

type ctx = {
  id : int;
  n : int;
  neighbors : int array;
  edge_weight : int -> int;
  vertex_weight : int;
  rng : Random.State.t;
}

type ('state, 'msg) algo = {
  name : string;
  init : ctx -> 'state;
  round : ctx -> round:int -> 'state -> (int * 'msg) list -> 'state * (int * 'msg) list;
  msg_bits : 'msg -> int;
  output : 'state -> int option;
}

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  bandwidth : int;
}

exception Bandwidth_exceeded of { algo : string; bits : int; bandwidth : int }

let bandwidth_for ?(factor = 8) n =
  let rec log2_ceil acc v = if v <= 1 then max acc 1 else log2_ceil (acc + 1) ((v + 1) / 2) in
  factor * log2_ceil 0 n

let make_ctxs ?(seed = 0) g =
  Array.init (Graph.n g) (fun v ->
      {
        id = v;
        n = Graph.n g;
        neighbors = Array.of_list (Graph.neighbors g v);
        edge_weight = (fun u -> Graph.edge_weight g v u);
        vertex_weight = Graph.vweight g v;
        rng = Random.State.make [| seed; v |];
      })

let run_internal ?seed ?bandwidth_factor ?max_rounds ~on_message g algo =
  let n = Graph.n g in
  let bandwidth = bandwidth_for ?factor:bandwidth_factor n in
  let max_rounds =
    match max_rounds with
    | Some r -> r
    | None -> (20 * n) + (10 * Graph.m g) + 100
  in
  let ctxs = make_ctxs ?seed g in
  let states = Array.map (fun ctx -> algo.init ctx) ctxs in
  let inboxes = Array.make n [] in
  let messages = ref 0 and total_bits = ref 0 and max_bits = ref 0 in
  let round = ref 0 in
  let quiescent = ref false in
  while
    (not !quiescent)
    || Array.exists (fun st -> algo.output st = None) states
  do
    if !round > max_rounds then
      failwith
        (Printf.sprintf "Network.run: algorithm %S did not terminate in %d rounds"
           algo.name max_rounds);
    let outboxes = Array.make n [] in
    for v = 0 to n - 1 do
      let inbox = List.rev inboxes.(v) in
      inboxes.(v) <- [];
      let state', outbox = algo.round ctxs.(v) ~round:!round states.(v) inbox in
      states.(v) <- state';
      List.iter
        (fun (target, _) ->
          if not (Graph.mem_edge g v target) then
            failwith
              (Printf.sprintf
                 "Network.run: %S sent %d -> %d but they are not adjacent"
                 algo.name v target))
        outbox;
      let targets = List.map fst outbox in
      if List.length (List.sort_uniq compare targets) <> List.length targets then
        failwith
          (Printf.sprintf "Network.run: %S sent two messages on one edge" algo.name);
      outboxes.(v) <- outbox
    done;
    let sent_any = ref false in
    Array.iteri
      (fun sender outbox ->
        List.iter
          (fun (target, msg) ->
            let bits = algo.msg_bits msg in
            if bits > bandwidth then
              raise (Bandwidth_exceeded { algo = algo.name; bits; bandwidth });
            sent_any := true;
            incr messages;
            total_bits := !total_bits + bits;
            max_bits := max !max_bits bits;
            on_message ~sender ~target ~bits;
            inboxes.(target) <- (sender, msg) :: inboxes.(target))
          outbox)
      outboxes;
    quiescent := not !sent_any;
    incr round
  done;
  let stats =
    {
      rounds = !round;
      messages = !messages;
      total_bits = !total_bits;
      max_message_bits = !max_bits;
      bandwidth;
    }
  in
  (states, stats)

let run ?seed ?bandwidth_factor ?max_rounds g algo =
  run_internal ?seed ?bandwidth_factor ?max_rounds
    ~on_message:(fun ~sender:_ ~target:_ ~bits:_ -> ())
    g algo

type cut_stats = { stats : stats; cut_bits : int; cut_messages : int }

let run_split ?seed ?bandwidth_factor ?max_rounds ~side g algo =
  if Array.length side <> Graph.n g then invalid_arg "Network.run_split: side length";
  let cut_bits = ref 0 and cut_messages = ref 0 in
  let states, stats =
    run_internal ?seed ?bandwidth_factor ?max_rounds
      ~on_message:(fun ~sender ~target ~bits ->
        if side.(sender) <> side.(target) then begin
          cut_bits := !cut_bits + bits;
          incr cut_messages
        end)
      g algo
  in
  (states, { stats; cut_bits = !cut_bits; cut_messages = !cut_messages })
