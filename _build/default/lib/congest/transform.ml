open Ch_graph
open Ch_solvers

let directed_to_undirected_hc dg =
  let n = Digraph.n dg in
  let g = Graph.create (3 * n) in
  let v_in v = 3 * v and v_mid v = (3 * v) + 1 and v_out v = (3 * v) + 2 in
  for v = 0 to n - 1 do
    Graph.add_edge g (v_in v) (v_mid v);
    Graph.add_edge g (v_mid v) (v_out v)
  done;
  Digraph.iter_arcs (fun u v _ -> Graph.add_edge g (v_out u) (v_in v)) dg;
  g

let directed_to_undirected_overhead = 2

let undirected_to_directed_hc g =
  let n3 = Graph.n g in
  if n3 mod 3 <> 0 then invalid_arg "Transform.undirected_to_directed_hc";
  let n = n3 / 3 in
  let dg = Digraph.create n in
  Graph.iter_edges
    (fun a b _ ->
      let a, b = (min a b, max a b) in
      (* chain edges are (3v, 3v+1) and (3v+1, 3v+2); arc edges join
         u_out = 3u+2 with v_in = 3v *)
      if a / 3 <> b / 3 then
        match (a mod 3, b mod 3) with
        | 0, 2 -> Digraph.add_arc dg (b / 3) (a / 3)
        | 2, 0 -> Digraph.add_arc dg (a / 3) (b / 3)
        | _ -> invalid_arg "Transform.undirected_to_directed_hc: not a split graph")
    g;
  dg

let hp_to_hc g' =
  let n' = Graph.n g' in
  if n' < 4 then invalid_arg "Transform.hp_to_hc";
  let n = n' - 3 in
  let v2 = n in
  let g = Graph.create n in
  Graph.iter_edges
    (fun u v _ ->
      let u, v = (min u v, max u v) in
      if v < n then Graph.add_edge g u v
      else if v = v2 && u <> 0 && not (Graph.mem_edge g 0 u) then
        Graph.add_edge g 0 u)
    g';
  g

let hc_to_hp g =
  let n = Graph.n g in
  if n < 1 then invalid_arg "Transform.hc_to_hp: empty graph";
  let g' = Graph.create (n + 3) in
  let v2 = n and s = n + 1 and t = n + 2 in
  Graph.iter_edges
    (fun u v _ ->
      Graph.add_edge g' u v;
      if u = 0 then Graph.add_edge g' v2 v;
      if v = 0 then Graph.add_edge g' v2 u)
    g;
  Graph.add_edge g' s 0;
  Graph.add_edge g' v2 t;
  (g', (v2, s, t))

let hc_to_hp_overhead = 2

let hamiltonian_cycle_via_path g =
  if Graph.n g < 3 then false
  else begin
    let g', _ = hc_to_hp g in
    Hamilton.undirected_path g' <> None
  end

let directed_cycle_via_undirected dg =
  if Digraph.n dg < 2 then false
  else Hamilton.undirected_cycle (directed_to_undirected_hc dg) <> None
