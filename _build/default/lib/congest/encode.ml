let int_bits ~max =
  if max < 0 then invalid_arg "Encode.int_bits";
  let rec go acc v = if v = 0 then Stdlib.max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 max

let id_bits ~n = int_bits ~max:(Stdlib.max 1 (n - 1))
