open Ch_graph
open Ch_solvers

type result = {
  estimate : int;
  sample_optimum : int;
  sampled_edges : int;
  stats : Network.stats;
}

let sample_probability ?(s = 1) g =
  let n = float_of_int (Graph.n g) and m = float_of_int (max 1 (Graph.m g)) in
  let logn = log n /. log 2.0 in
  min 1.0 (n *. (logn ** float_of_int s) /. m)

let run ?seed ?p g =
  let n = Graph.n g in
  if n > 30 then invalid_arg "Maxcut_sample.run: n > 30 (exact solver limit)";
  let p = match p with Some p -> p | None -> sample_probability g in
  let sampled = ref 0 in
  let edge_filter ctx (_, _, _) =
    let keep = Random.State.float ctx.Network.rng 1.0 < p in
    if keep then incr sampled;
    keep
  in
  let f sample = fst (Maxcut.max_cut sample) in
  let algo = Gather.algo ~edge_filter ~root:0 ~f () in
  let states, stats = Network.run ?seed g algo in
  let sample_optimum =
    match algo.Network.output states.(0) with
    | Some a -> a
    | None -> assert false
  in
  {
    estimate = int_of_float (float_of_int sample_optimum /. p);
    sample_optimum;
    sampled_edges = !sampled;
    stats;
  }
