open Ch_graph

(** The local-aggregate algorithm model of Section 4.5 (Definition 4.1 and
    Theorem 4.8): in each round a vertex's new input is a function of its
    previous input and an {e aggregate function} of its incoming messages,
    where the aggregate f decomposes as f(X) = φ(f(X₁), f(X₂)) over any
    partition.

    Such algorithms can be simulated by Alice and Bob even when some
    vertices belong to {e neither} player: each player aggregates the
    messages it knows, and the two partial aggregates are combined with φ
    after exchanging O(log n) bits per shared vertex per round — the
    simulation cost Theorem 4.8 charges. *)

type 'st algo = {
  rounds : int;
  init : Graph.t -> int -> 'st;
  message : 'st -> round:int -> target:int -> int;
      (** the O(log n)-bit message this vertex sends; may depend on the
          target's id *)
  aggregate : int -> int -> int;  (** φ, associative and commutative *)
  unit_agg : int;
  update : 'st -> agg:int -> round:int -> 'st;
}

val run_centralized : Graph.t -> 'st algo -> 'st array

type owner = Alice | Bob | Shared

type 'st simulation = { states : 'st array; bits : int; shared : int }

val simulate_two_party : Graph.t -> owner:(int -> owner) -> 'st algo -> 'st simulation
(** Bit-for-bit the same outcome as {!run_centralized}; [bits] counts only
    the partial aggregates exchanged for the shared vertices. *)

val flood_max : rounds:int -> int algo
(** Every vertex learns the maximum vertex weight within [rounds] hops —
    the classic aggregate (max) algorithm used as the demonstration. *)

val gossip_sum : rounds:int -> int algo
(** Repeated sum-aggregation of neighbor values (a non-idempotent φ),
    exercising the simulation on sums as the O(log ∆)-approximation MDS
    algorithms the paper cites would. *)
