(** The Section 5.1 limitation protocols: cheap two-party approximations
    whose existence shows Theorem 1.1 cannot prove the corresponding
    hardness (Corollary 5.1).  Each returns the solution it computes and
    the exact number of bits Alice and Bob exchanged (through
    {!Ch_cc.Protocol}). *)

type 'a result = { value : 'a; bits : int }

val mvc_bounded_degree : eps:float -> Split.t -> int list result
(** Claim 5.1: a (1+ε)-approximate vertex cover, O(|E_cut|·log n / ε)
    bits on bounded-degree inputs. *)

val mds_bounded_degree : eps:float -> Split.t -> int list result
(** Claim 5.2. *)

val maxis_bounded_degree : eps:float -> Split.t -> int list result
(** Claim 5.3: a (1−ε)-approximate independent set. *)

val maxcut_unweighted : eps:float -> Split.t -> (int * bool array) result
(** Claim 5.4: a (1−ε)-approximate max cut (unweighted). *)

val maxcut_weighted_two_thirds : Split.t -> (int * bool array) result
(** Claim 5.5, after [30]: the best of C_A, C_B, C_A ⊕ C_B is a
    2/3-approximation of the weighted max cut. *)

val mvc_three_halves : Split.t -> int result
(** Claim 5.6: the weight of a 3/2-approximate weighted vertex cover. *)

val mds_two_approx : Split.t -> int list result
(** Claim 5.8: a 2-approximate weighted dominating set. *)

val maxis_half : Split.t -> int result
(** Claim 5.9: the weight of a 1/2-approximate weighted independent
    set. *)

val mvc_one_plus_eps : eps:float -> Split.t -> int list result
(** Claim 5.7 (unweighted): a (1+ε)-approximate vertex cover with
    O(OPT·|E_cut|·log n / ε) bits — estimate OPT via Claim 5.6, force the
    high-degree vertices, and learn the ≤ OPT² leftover edges when the cut
    is large. *)
