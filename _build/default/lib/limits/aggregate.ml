open Ch_graph
open Ch_cc

type 'st algo = {
  rounds : int;
  init : Graph.t -> int -> 'st;
  message : 'st -> round:int -> target:int -> int;
  aggregate : int -> int -> int;
  unit_agg : int;
  update : 'st -> agg:int -> round:int -> 'st;
}

let run_centralized g algo =
  let n = Graph.n g in
  let states = Array.init n (algo.init g) in
  for round = 0 to algo.rounds - 1 do
    let aggs =
      Array.init n (fun v ->
          List.fold_left
            (fun acc u ->
              algo.aggregate acc (algo.message states.(u) ~round ~target:v))
            algo.unit_agg (Graph.neighbors g v))
    in
    Array.iteri
      (fun v agg -> states.(v) <- algo.update states.(v) ~agg ~round)
      aggs
  done;
  states

type owner = Alice | Bob | Shared

type 'st simulation = { states : 'st array; bits : int; shared : int }

let simulate_two_party g ~owner algo =
  let n = Graph.n g in
  let ch = Protocol.create () in
  let states = Array.init n (algo.init g) in
  let shared =
    List.length (List.filter (fun v -> owner v = Shared) (List.init n Fun.id))
  in
  for round = 0 to algo.rounds - 1 do
    let aggs =
      Array.init n (fun v ->
          match owner v with
          | Alice | Bob ->
              (* simulated wholly by one player: no communication *)
              List.fold_left
                (fun acc u ->
                  algo.aggregate acc (algo.message states.(u) ~round ~target:v))
                algo.unit_agg (Graph.neighbors g v)
          | Shared ->
              (* each player aggregates the neighbors it simulates, then
                 the partials are exchanged and combined with φ *)
              let partial keep =
                List.fold_left
                  (fun acc u ->
                    if keep (owner u) then
                      algo.aggregate acc (algo.message states.(u) ~round ~target:v)
                    else acc)
                  algo.unit_agg (Graph.neighbors g v)
              in
              (* shared neighbors are tracked by both players; Alice's
                 partial takes them so they are counted once *)
              let pa = partial (fun o -> o = Alice || o = Shared) in
              let pb = partial (fun o -> o = Bob) in
              ignore (Protocol.send_int ch ~max:(max 1 (abs pa)) (abs pa));
              ignore (Protocol.send_int ch ~max:(max 1 (abs pb)) (abs pb));
              algo.aggregate pa pb)
    in
    Array.iteri
      (fun v agg -> states.(v) <- algo.update states.(v) ~agg ~round)
      aggs
  done;
  { states; bits = Protocol.bits ch; shared }

let flood_max ~rounds =
  {
    rounds;
    init = (fun g v -> Graph.vweight g v);
    message = (fun st ~round:_ ~target:_ -> st);
    aggregate = max;
    unit_agg = min_int / 2;
    update = (fun st ~agg ~round:_ -> max st agg);
  }

let gossip_sum ~rounds =
  {
    rounds;
    init = (fun g v -> Graph.vweight g v);
    message = (fun st ~round:_ ~target:_ -> st);
    aggregate = ( + );
    unit_agg = 0;
    update = (fun st ~agg ~round:_ -> st + agg);
  }
