(** Claim 5.11: nondeterministic two-party protocols for max (s,t)-flow,
    showing Theorem 1.1 cannot give super-constant bounds for it.

    The nondeterministic string is a certificate produced here by the exact
    solver; the players verify it exchanging only O(|E_cut|·log n) bits
    (flow values on the cut edges, or the cut-vertex flags plus partial
    sums). *)

type verdict = { accepted : bool; bits : int }

val flow_ge : Split.t -> s:int -> t:int -> k:int -> verdict
(** Accept iff max-flow(s,t) ≥ k, via a flow certificate. *)

val flow_lt : Split.t -> s:int -> t:int -> k:int -> verdict
(** Accept iff max-flow(s,t) < k, via an (s,t)-cut certificate. *)

val neq : Ch_cc.Bits.t -> Ch_cc.Bits.t -> verdict
(** The O(log K)-bit nondeterministic protocol for ¬EQ (Section 5.2): the
    certificate is an index where the strings differ.  Accepts iff x ≠ y.
    CC_N(EQ) itself is Θ(K), which is why EQ-based families are as limited
    as DISJ-based ones (the Γ(f) discussion). *)

val via_pls :
  Ch_pls.Pls.scheme -> Split.t -> Ch_pls.Verif.t -> verdict
(** Theorem 5.1: any proof labeling scheme yields a nondeterministic
    two-party protocol whose cost is the labels of the cut-touching
    vertices.  The instance's graph must be the split's graph.  Accepts
    iff the scheme's predicate holds (prover labels verified locally by
    each player). *)
