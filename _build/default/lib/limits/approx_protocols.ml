open Ch_graph
open Ch_solvers
open Ch_cc

type 'a result = { value : 'a; bits : int }

let id_bits split = Protocol.bits_for_int ~max:(Graph.n split.Split.graph - 1)

let exchange_int ch split v =
  ignore (Protocol.send_int ch ~max:(max 1 v) v);
  ignore (id_bits split);
  v

(* cost of shipping the whole graph across: every edge with its weight *)
let learn_whole_graph ch split =
  let g = split.Split.graph in
  let wmax =
    Graph.edges g |> List.fold_left (fun acc (_, _, w) -> max acc w) 1
  in
  let per_edge = (2 * id_bits split) + Protocol.bits_for_int ~max:wmax in
  Protocol.charge ch (Graph.m g * per_edge)

(* minimum-weight vertex cover of an edge subset, by MWIS complementation *)
let min_weight_cover g edge_list =
  let h = Graph.create (Graph.n g) in
  for v = 0 to Graph.n g - 1 do
    Graph.set_vweight h v (Graph.vweight g v)
  done;
  List.iter (fun (u, v) -> Graph.add_edge h u v) edge_list;
  let total = Array.fold_left ( + ) 0 (Graph.vweights h) in
  let alpha_w, is = Mis.max_weight_set h in
  let inside = Array.make (Graph.n g) false in
  List.iter (fun v -> inside.(v) <- true) is;
  ( total - alpha_w,
    List.filter (fun v -> not inside.(v)) (List.init (Graph.n g) Fun.id) )

let edges_within split ~alice =
  let side = split.Split.side in
  List.filter_map
    (fun (u, v, w) ->
      if side.(u) = alice && side.(v) = alice then Some (u, v, w) else None)
    (Graph.edges split.Split.graph)

(* ------------------------------------------------------------------ *)
(* Claim 5.1: (1+ε) MVC in bounded-degree graphs                       *)
(* ------------------------------------------------------------------ *)

let mvc_bounded_degree ~eps split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let m = exchange_int ch split (Graph.m g) in
  let delta = exchange_int ch split (max 1 (Graph.max_degree g)) in
  let cut = Split.cut_size split in
  if float_of_int cut <= eps *. float_of_int m /. (2.0 *. float_of_int delta)
  then begin
    let cover_of alice =
      snd
        (min_weight_cover
           (let g' = Graph.copy g in
            for v = 0 to Graph.n g - 1 do
              Graph.set_vweight g' v 1
            done;
            g')
           (List.map (fun (u, v, _) -> (u, v)) (edges_within split ~alice)))
    in
    let touching =
      Split.cut_vertices split ~alice:true @ Split.cut_vertices split ~alice:false
    in
    let value =
      List.sort_uniq compare (cover_of true @ cover_of false @ touching)
    in
    { value; bits = Protocol.bits ch }
  end
  else begin
    learn_whole_graph ch split;
    { value = Mis.min_vertex_cover g; bits = Protocol.bits ch }
  end

(* ------------------------------------------------------------------ *)
(* Claim 5.2: (1+ε) MDS in bounded-degree graphs                       *)
(* ------------------------------------------------------------------ *)

let mds_partial split ~alice =
  (* the cheapest set of own-side vertices dominating the internal
     vertices of this side *)
  let g = split.Split.graph in
  let own = Split.side_vertices split ~alice in
  let sub, map = Graph.induced g own in
  let internal = Split.internal split ~alice in
  let inv = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace inv v i) map;
  let required = List.map (Hashtbl.find inv) internal in
  let _, set =
    Domset.min_weight_set ~weights:(Array.make (Graph.n sub) 1) ~required sub
  in
  List.map (fun i -> map.(i)) set

let mds_bounded_degree ~eps split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let m = exchange_int ch split (Graph.m g) in
  let delta = exchange_int ch split (max 1 (Graph.max_degree g)) in
  let cut = Split.cut_size split in
  if
    float_of_int cut
    <= eps *. float_of_int m
       /. (float_of_int ((delta + 1) * delta))
  then begin
    let touching =
      Split.cut_vertices split ~alice:true @ Split.cut_vertices split ~alice:false
    in
    let value =
      List.sort_uniq compare
        (mds_partial split ~alice:true @ mds_partial split ~alice:false @ touching)
    in
    { value; bits = Protocol.bits ch }
  end
  else begin
    learn_whole_graph ch split;
    let _, set = Domset.min_weight_set ~weights:(Array.make (Graph.n g) 1) g in
    { value = set; bits = Protocol.bits ch }
  end

(* ------------------------------------------------------------------ *)
(* Claim 5.3: (1−ε) MaxIS in bounded-degree graphs                     *)
(* ------------------------------------------------------------------ *)

let maxis_bounded_degree ~eps split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let m = exchange_int ch split (Graph.m g) in
  let delta = exchange_int ch split (max 1 (Graph.max_degree g)) in
  let cut = Split.cut_size split in
  if
    float_of_int cut
    <= eps *. float_of_int m /. float_of_int ((delta + 1) * delta)
  then begin
    let is_of alice =
      let sub, map = Graph.induced g (Split.internal split ~alice) in
      List.map (fun i -> map.(i)) (Mis.max_independent_set sub)
    in
    { value = is_of true @ is_of false; bits = Protocol.bits ch }
  end
  else begin
    learn_whole_graph ch split;
    { value = Mis.max_independent_set g; bits = Protocol.bits ch }
  end

(* ------------------------------------------------------------------ *)
(* Claims 5.4 / 5.5: max cut                                           *)
(* ------------------------------------------------------------------ *)

let side_cut_of split ~alice =
  (* exact max cut of this player's internal edges, on its own vertices *)
  let g = split.Split.graph in
  let own = Split.side_vertices split ~alice in
  let sub, map = Graph.induced g own in
  let _, assignment = Maxcut.max_cut sub in
  let full = Array.make (Graph.n g) false in
  Array.iteri (fun i v -> full.(v) <- assignment.(i)) map;
  full

let maxcut_unweighted ~eps split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let m = exchange_int ch split (Graph.m g) in
  let cut = Split.cut_size split in
  if float_of_int cut <= eps *. float_of_int m /. 2.0 then begin
    let a = side_cut_of split ~alice:true
    and b = side_cut_of split ~alice:false in
    let side =
      Array.init (Graph.n g) (fun v ->
          if split.Split.side.(v) then a.(v) else b.(v))
    in
    (* announcing the value costs each player its cut-vertex assignments *)
    Protocol.charge ch
      (List.length (Split.cut_vertices split ~alice:true)
      + List.length (Split.cut_vertices split ~alice:false));
    { value = (Maxcut.cut_weight g side, side); bits = Protocol.bits ch }
  end
  else begin
    learn_whole_graph ch split;
    { value = Maxcut.max_cut g; bits = Protocol.bits ch }
  end

let maxcut_weighted_two_thirds split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  (* C_A: optimal on Alice's internal edges; C_B: optimal on Bob's edges
     plus the cut (over all vertices Bob knows about) *)
  let ca = side_cut_of split ~alice:true in
  let cb =
    let bobs = Graph.create (Graph.n g) in
    Graph.iter_edges
      (fun u v w ->
        if not (split.Split.side.(u) && split.Split.side.(v)) then
          Graph.add_edge ~w bobs u v)
      g;
    snd (Maxcut.max_cut bobs)
  in
  let cxor = Array.init (Graph.n g) (fun v -> ca.(v) <> cb.(v)) in
  (* evaluating the three candidates requires the cut-vertex assignments
     and three running sums *)
  Protocol.charge ch
    (2
    * (List.length (Split.cut_vertices split ~alice:true)
      + List.length (Split.cut_vertices split ~alice:false)));
  let wmax = Graph.total_edge_weight g in
  List.iter
    (fun _ -> ignore (Protocol.send_int ch ~max:(max 1 wmax) 0))
    [ (); (); () ];
  let best =
    List.fold_left
      (fun acc side ->
        let w = Maxcut.cut_weight g side in
        match acc with
        | Some (bw, _) when bw >= w -> acc
        | _ -> Some (w, side))
      None [ ca; cb; cxor ]
  in
  { value = Option.get best; bits = Protocol.bits ch }

(* ------------------------------------------------------------------ *)
(* Claim 5.6: 3/2 weighted MVC                                         *)
(* ------------------------------------------------------------------ *)

let mvc_three_halves split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let wtotal = Array.fold_left ( + ) 0 (Graph.vweights g) in
  let opt_side alice =
    fst
      (min_weight_cover g
         (List.map (fun (u, v, _) -> (u, v)) (edges_within split ~alice)))
  in
  let opt_a = Protocol.send_int ch ~max:(max 1 wtotal) (opt_side true) in
  let opt_b = Protocol.send_int ch ~max:(max 1 wtotal) (opt_side false) in
  let smaller_is_alice = opt_a <= opt_b in
  (* the other player covers every edge it knows (its side plus the cut) *)
  let rest_edges =
    List.filter_map
      (fun (u, v, w) ->
        let both_alice = split.Split.side.(u) && split.Split.side.(v) in
        let both_bob = (not split.Split.side.(u)) && not split.Split.side.(v) in
        ignore w;
        if smaller_is_alice then if both_alice then None else Some (u, v)
        else if both_bob then None
        else Some (u, v))
      (Graph.edges g)
  in
  let rest_cost, rest_cover = min_weight_cover g rest_edges in
  (* announcing the opposite-side vertices used *)
  Protocol.charge ch (List.length rest_cover * id_bits split);
  { value = min opt_a opt_b + rest_cost; bits = Protocol.bits ch }

(* ------------------------------------------------------------------ *)
(* Claim 5.8: 2-approximate weighted MDS                               *)
(* ------------------------------------------------------------------ *)

let mds_cover_side split ch ~alice =
  let g = split.Split.graph in
  (* the other side's cut vertices are usable once their weights are
     announced (O(|E_cut|·log n) bits) *)
  let other_cut = Split.cut_vertices split ~alice:(not alice) in
  let wmax =
    Array.fold_left max 1 (Graph.vweights g)
  in
  List.iter
    (fun v -> ignore (Protocol.send_int ch ~max:wmax (Graph.vweight g v)))
    other_cut;
  let known = Split.side_vertices split ~alice @ other_cut in
  let sub, map = Graph.induced g known in
  let inv = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace inv v i) map;
  let required =
    List.map (Hashtbl.find inv) (Split.side_vertices split ~alice)
  in
  let _, set = Domset.min_weight_set ~required sub in
  let chosen = List.map (fun i -> map.(i)) set in
  (* announce choices on the opposite side *)
  let foreign = List.filter (fun v -> split.Split.side.(v) <> alice) chosen in
  Protocol.charge ch (List.length foreign * id_bits split);
  chosen

let mds_two_approx split =
  let ch = Protocol.create () in
  let a = mds_cover_side split ch ~alice:true in
  let b = mds_cover_side split ch ~alice:false in
  { value = List.sort_uniq compare (a @ b); bits = Protocol.bits ch }

(* ------------------------------------------------------------------ *)
(* Claim 5.9: 1/2 weighted MaxIS                                       *)
(* ------------------------------------------------------------------ *)

let maxis_half split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let wtotal = max 1 (Array.fold_left ( + ) 0 (Graph.vweights g)) in
  let weight_of alice =
    let sub, _ = Graph.induced g (Split.side_vertices split ~alice) in
    fst (Mis.max_weight_set sub)
  in
  let a = Protocol.send_int ch ~max:wtotal (weight_of true) in
  let b = Protocol.send_int ch ~max:wtotal (weight_of false) in
  { value = max a b; bits = Protocol.bits ch }

(* ------------------------------------------------------------------ *)
(* Claim 5.7: (1+ε) unweighted MVC                                     *)
(* ------------------------------------------------------------------ *)

let mvc_one_plus_eps ~eps split =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let n = Graph.n g in
  let unit_weights = Graph.copy g in
  for v = 0 to n - 1 do
    Graph.set_vweight unit_weights v 1
  done;
  (* the Claim 5.6 estimate: OPT <= estimate <= 3/2 OPT *)
  let opt_side alice =
    fst
      (min_weight_cover unit_weights
         (List.map (fun (u, v, _) -> (u, v)) (edges_within split ~alice)))
  in
  let opt_a = Protocol.send_int ch ~max:n (opt_side true) in
  let opt_b = Protocol.send_int ch ~max:n (opt_side false) in
  let rest_edges smaller_is_alice =
    List.filter_map
      (fun (u, v, _) ->
        let both_alice = split.Split.side.(u) && split.Split.side.(v) in
        let both_bob = (not split.Split.side.(u)) && not split.Split.side.(v) in
        if smaller_is_alice then if both_alice then None else Some (u, v)
        else if both_bob then None
        else Some (u, v))
      (Graph.edges g)
  in
  let smaller_is_alice = opt_a <= opt_b in
  let estimate =
    min opt_a opt_b + fst (min_weight_cover unit_weights (rest_edges smaller_is_alice))
  in
  ignore (Protocol.send_int ch ~max:n estimate);
  let cut = Split.cut_size split in
  if float_of_int cut <= eps *. float_of_int estimate /. 3.0 then begin
    (* small cut: per-side optimal covers plus every cut vertex *)
    let cover_of alice =
      snd
        (min_weight_cover unit_weights
           (List.map (fun (u, v, _) -> (u, v)) (edges_within split ~alice)))
    in
    let touching =
      Split.cut_vertices split ~alice:true @ Split.cut_vertices split ~alice:false
    in
    { value = List.sort_uniq compare (cover_of true @ cover_of false @ touching);
      bits = Protocol.bits ch }
  end
  else begin
    (* force the high-degree vertices (degree > estimate >= OPT means the
       vertex is in every optimal cover), announce the cut ones, then
       learn the <= estimate^2 leftover edges and finish exactly *)
    let forced =
      List.filter (fun v -> Graph.degree g v > estimate) (List.init n Fun.id)
    in
    let forced_set = Array.make n false in
    List.iter (fun v -> forced_set.(v) <- true) forced;
    let announced =
      List.filter
        (fun v ->
          List.exists (fun u -> split.Split.side.(u) <> split.Split.side.(v))
            (Graph.neighbors g v))
        forced
    in
    Protocol.charge ch (List.length announced * id_bits split);
    let leftover =
      List.filter_map
        (fun (u, v, _) ->
          if forced_set.(u) || forced_set.(v) then None else Some (u, v))
        (Graph.edges g)
    in
    Protocol.charge ch (List.length leftover * 2 * id_bits split);
    let _, rest_cover = min_weight_cover unit_weights leftover in
    { value = List.sort_uniq compare (forced @ rest_cover); bits = Protocol.bits ch }
  end
