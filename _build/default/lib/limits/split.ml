open Ch_graph

type t = { graph : Graph.t; side : bool array }

let make graph ~side =
  if Array.length side <> Graph.n graph then invalid_arg "Split.make";
  { graph; side }

let cut_edges t =
  let acc = ref [] in
  Graph.iter_edges
    (fun u v w -> if t.side.(u) <> t.side.(v) then acc := (u, v, w) :: !acc)
    t.graph;
  List.sort compare !acc

let cut_size t = List.length (cut_edges t)

let view t ~alice =
  let g = Graph.create ~default_vweight:0 (Graph.n t.graph) in
  for v = 0 to Graph.n t.graph - 1 do
    if t.side.(v) = alice then Graph.set_vweight g v (Graph.vweight t.graph v)
  done;
  Graph.iter_edges
    (fun u v w ->
      if t.side.(u) = alice || t.side.(v) = alice then Graph.add_edge ~w g u v)
    t.graph;
  g

let alice_view t = view t ~alice:true

let bob_view t = view t ~alice:false

let touches_cut t v =
  List.exists (fun u -> t.side.(u) <> t.side.(v)) (Graph.neighbors t.graph v)

let side_vertices t ~alice =
  List.filter (fun v -> t.side.(v) = alice) (List.init (Graph.n t.graph) Fun.id)

let internal t ~alice =
  List.filter (fun v -> not (touches_cut t v)) (side_vertices t ~alice)

let cut_vertices t ~alice =
  List.filter (fun v -> touches_cut t v) (side_vertices t ~alice)
