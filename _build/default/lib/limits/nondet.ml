open Ch_graph
open Ch_solvers
open Ch_cc

type verdict = { accepted : bool; bits : int }

(* Alice holds the flow on edges touching V_A, Bob on edges touching V_B
   (cut edges are shared).  Verification: per-side conservation at every
   vertex other than s and t, capacities respected, and the net flow out
   of s at least k.  The only communication is the flow carried by the
   cut edges plus the partial value at s. *)
let flow_ge split ~s ~t ~k =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let network = Flow.of_graph g in
  let value = Flow.max_flow network ~s ~t in
  if value < k then
    (* no certificate exists: any claimed flow of value >= k must violate
       conservation or capacity somewhere, which the owner of that vertex
       or edge detects locally *)
    { accepted = false; bits = Protocol.bits ch }
  else begin
    let flows = Flow.flow_on_edges network in
    (* exchange the flow on cut edges *)
    let wmax =
      List.fold_left (fun acc (_, _, w) -> max acc w) 1 (Graph.edges g)
    in
    List.iter
      (fun (u, v, f) ->
        if split.Split.side.(u) <> split.Split.side.(v) then
          ignore (Protocol.send_int ch ~max:wmax f))
      flows;
    (* each side checks conservation locally; the flow value at s crosses
       as one integer *)
    let net = Array.make (Graph.n g) 0 in
    List.iter
      (fun (u, v, f) ->
        net.(u) <- net.(u) - f;
        net.(v) <- net.(v) + f)
      flows;
    let conserved =
      List.for_all
        (fun v -> v = s || v = t || net.(v) = 0)
        (List.init (Graph.n g) Fun.id)
    in
    let capacities_ok =
      List.for_all (fun (u, v, f) -> f <= Graph.edge_weight g u v) flows
    in
    ignore (Protocol.send_int ch ~max:(max 1 (abs net.(s))) (abs net.(s)));
    { accepted = conserved && capacities_ok && -net.(s) >= k; bits = Protocol.bits ch }
  end

(* the certificate is the source side of a minimum cut; flags of the
   cut-touching vertices plus each side's partial cut weight cross *)
let flow_lt split ~s ~t ~k =
  let ch = Protocol.create () in
  let g = split.Split.graph in
  let network = Flow.of_graph g in
  let value = Flow.max_flow network ~s ~t in
  if value >= k then { accepted = false; bits = Protocol.bits ch }
  else begin
    let side_of_cut = Flow.min_cut_side network ~s ~t in
    Protocol.charge ch
      (List.length (Split.cut_vertices split ~alice:true)
      + List.length (Split.cut_vertices split ~alice:false));
    let weight = ref 0 in
    Graph.iter_edges
      (fun u v w -> if side_of_cut.(u) <> side_of_cut.(v) then weight := !weight + w)
      g;
    ignore (Protocol.send_int ch ~max:(max 1 !weight) !weight);
    { accepted = side_of_cut.(s) && (not side_of_cut.(t)) && !weight < k;
      bits = Protocol.bits ch }
  end

let neq x y =
  let ch = Protocol.create () in
  match Commfn.witness_diff x y with
  | None -> { accepted = false; bits = Protocol.bits ch }
  | Some i ->
      ignore (Protocol.send_int ch ~max:(max 1 (Bits.length x - 1)) i);
      ignore (Protocol.send_bool ch (Bits.get x i));
      { accepted = Bits.get x i <> Bits.get y i; bits = Protocol.bits ch }

let via_pls scheme split inst =
  let ch = Protocol.create () in
  if inst.Ch_pls.Verif.graph != split.Split.graph then
    invalid_arg "Nondet.via_pls: instance/split mismatch";
  match scheme.Ch_pls.Pls.prover inst with
  | None -> { accepted = false; bits = Protocol.bits ch }
  | Some labeling ->
      (* each player sends the labels of its cut-touching vertices *)
      let cut_vertices =
        Split.cut_vertices split ~alice:true @ Split.cut_vertices split ~alice:false
      in
      List.iter
        (fun v ->
          List.iter
            (fun field -> Protocol.charge ch (Protocol.bits_for_int ~max:(max 1 (abs field)) + 1))
            labeling.(v))
        cut_vertices;
      { accepted = Ch_pls.Pls.accepts scheme inst labeling; bits = Protocol.bits ch }
