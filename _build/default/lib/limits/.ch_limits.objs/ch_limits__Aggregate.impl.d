lib/limits/aggregate.ml: Array Ch_cc Ch_graph Fun Graph List Protocol
