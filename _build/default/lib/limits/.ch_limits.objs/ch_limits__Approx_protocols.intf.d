lib/limits/approx_protocols.mli: Split
