lib/limits/aggregate.mli: Ch_graph Graph
