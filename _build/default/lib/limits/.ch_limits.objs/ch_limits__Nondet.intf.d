lib/limits/nondet.mli: Ch_cc Ch_pls Split
