lib/limits/nondet.ml: Array Bits Ch_cc Ch_graph Ch_pls Ch_solvers Commfn Flow Fun Graph List Protocol Split
