lib/limits/split.ml: Array Ch_graph Fun Graph List
