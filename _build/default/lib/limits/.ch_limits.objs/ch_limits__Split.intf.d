lib/limits/split.mli: Ch_graph Graph
