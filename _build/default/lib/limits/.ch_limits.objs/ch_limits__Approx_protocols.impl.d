lib/limits/approx_protocols.ml: Array Ch_cc Ch_graph Ch_solvers Domset Fun Graph Hashtbl List Maxcut Mis Option Protocol Split
