open Ch_graph

(** Two-party views of a split graph, shared by the Section 5.1
    protocols: Alice sees G[V_A] plus the cut (edges, weights, the ids of
    the cut vertices on Bob's side), Bob symmetrically. *)

type t = { graph : Graph.t; side : bool array }

val make : Graph.t -> side:bool array -> t

val cut_edges : t -> (int * int * int) list

val cut_size : t -> int

val alice_view : t -> Graph.t
(** The full vertex set, but only the edges Alice knows (inside V_A or
    crossing).  Vertex weights of pure-Bob vertices are zeroed: Alice does
    not know them. *)

val bob_view : t -> Graph.t

val internal : t -> alice:bool -> int list
(** Vertices of one side with no cut edge. *)

val side_vertices : t -> alice:bool -> int list

val cut_vertices : t -> alice:bool -> int list
