(** Bit accounting for explicit two-party protocols.

    Protocols in this repository are written as straight-line OCaml over
    both inputs, but every datum that crosses between Alice and Bob is
    routed through a channel that charges its encoding size; the recorded
    total is the protocol's communication on that run. *)

type t

val create : unit -> t

val bits : t -> int
(** Total bits charged so far. *)

val charge : t -> int -> unit
(** Charge raw bits. *)

val bits_for_int : max:int -> int
(** Bits of a fixed-width encoding of values in [0, max]. *)

val send_bool : t -> bool -> bool
(** Charges 1 bit and hands the value to the other party. *)

val send_int : t -> max:int -> int -> int
(** Charges [bits_for_int ~max]. *)

val send_int_list : t -> max:int -> int list -> int list
(** Charges a length header plus per-element width. *)

val send_bits : t -> Bits.t -> Bits.t
(** Charges the string's length. *)
