type t = { mutable total : int }

let create () = { total = 0 }

let bits t = t.total

let charge t b =
  if b < 0 then invalid_arg "Protocol.charge";
  t.total <- t.total + b

let bits_for_int ~max =
  if max < 0 then invalid_arg "Protocol.bits_for_int";
  let rec go acc v = if v = 0 then Stdlib.max acc 1 else go (acc + 1) (v lsr 1) in
  go 0 max

let send_bool t b =
  charge t 1;
  b

let send_int t ~max v =
  if v < 0 || v > max then invalid_arg "Protocol.send_int: out of range";
  charge t (bits_for_int ~max);
  v

let send_int_list t ~max vs =
  charge t (bits_for_int ~max:(List.length vs));
  List.iter (fun v -> ignore (send_int t ~max v)) vs;
  vs

let send_bits t b =
  charge t (Bits.length b);
  b
