(** Input strings for the two-party communication problems: x, y ∈ {0,1}^K.
    The quadratic families index K = k² bits by pairs (i,j) ∈ [k]². *)

type t

val length : t -> int

val zeros : int -> t

val ones : int -> t

val of_list : bool list -> t

val of_fun : int -> (int -> bool) -> t

val get : t -> int -> bool

val set : t -> int -> bool -> t
(** Functional update. *)

val get_pair : k:int -> t -> int -> int -> bool
(** [get_pair ~k x i j] reads index (i,j) of a string of length k²
    (row-major: index = i·k + j). *)

val set_pair : k:int -> t -> int -> int -> bool -> t

val random : seed:int -> ?density:float -> int -> t
(** Each bit is 1 independently with probability [density] (default 0.5). *)

val all : int -> t list
(** All [2^length] strings.  @raise Invalid_argument when [length > 20]. *)

val popcount : t -> int

val to_string : t -> string

val equal : t -> t -> bool
