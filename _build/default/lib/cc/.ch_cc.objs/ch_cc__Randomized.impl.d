lib/cc/randomized.ml: Bits Protocol Random
