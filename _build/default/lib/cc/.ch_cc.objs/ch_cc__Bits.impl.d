lib/cc/bits.ml: Array List Random String
