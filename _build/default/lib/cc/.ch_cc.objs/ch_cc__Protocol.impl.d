lib/cc/protocol.ml: Bits List Stdlib
