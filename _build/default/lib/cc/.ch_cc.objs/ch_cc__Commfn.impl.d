lib/cc/commfn.ml: Bits
