lib/cc/bits.mli:
