lib/cc/randomized.mli: Bits
