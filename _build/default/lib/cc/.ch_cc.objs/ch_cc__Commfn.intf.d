lib/cc/commfn.mli: Bits
