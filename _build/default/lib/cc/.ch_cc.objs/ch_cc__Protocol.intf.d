lib/cc/protocol.mli: Bits
