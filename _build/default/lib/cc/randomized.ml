type outcome = { equal : bool; bits : int }

let is_prime n =
  n >= 2
  &&
  let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
  go 2

let random_prime rng lo hi =
  let rec go attempts =
    if attempts > 10_000 then invalid_arg "Randomized: no prime found";
    let candidate = lo + Random.State.int rng (hi - lo) in
    if is_prime candidate then candidate else go (attempts + 1)
  in
  go 0

let eq_fingerprint ~seed x y =
  let k = Bits.length x in
  if Bits.length y <> k then invalid_arg "Randomized.eq_fingerprint";
  let rng = Random.State.make [| seed |] in
  (* a shared random prime in [K², 4K²]: at most log_p(2^K) ≈ K/(2 log K)
     of the ~K²/ln K primes can divide the difference *)
  let lo = max 5 (k * k) in
  let p = random_prime rng lo (4 * lo) in
  let residue s =
    let acc = ref 0 in
    for i = Bits.length s - 1 downto 0 do
      acc := ((2 * !acc) + if Bits.get s i then 1 else 0) mod p
    done;
    !acc
  in
  let ch = Protocol.create () in
  let fx = Protocol.send_int ch ~max:(p - 1) (residue x) in
  ignore (Protocol.send_int ch ~max:(4 * lo) p);
  { equal = fx = residue y; bits = Protocol.bits ch }
