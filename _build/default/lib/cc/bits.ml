type t = bool array

let length = Array.length

let zeros k = Array.make k false

let ones k = Array.make k true

let of_list = Array.of_list

let of_fun = Array.init

let get (t : t) i = t.(i)

let set t i b =
  let t' = Array.copy t in
  t'.(i) <- b;
  t'

let pair_index ~k i j =
  if i < 0 || i >= k || j < 0 || j >= k then invalid_arg "Bits: pair index";
  (i * k) + j

let get_pair ~k t i j = t.(pair_index ~k i j)

let set_pair ~k t i j b = set t (pair_index ~k i j) b

let random ~seed ?(density = 0.5) k =
  let rng = Random.State.make [| seed |] in
  Array.init k (fun _ -> Random.State.float rng 1.0 < density)

let all k =
  if k > 20 then invalid_arg "Bits.all: length > 20";
  List.init (1 lsl k) (fun mask -> Array.init k (fun i -> (mask lsr i) land 1 = 1))

let popcount t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t

let to_string t =
  String.init (Array.length t) (fun i -> if t.(i) then '1' else '0')

let equal (a : t) b = a = b
