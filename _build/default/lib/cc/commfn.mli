(** The two-party functions behind the lower bounds. *)

val disj : Bits.t -> Bits.t -> bool
(** Set disjointness: TRUE iff no index has x_i = y_i = 1.
    CC(DISJ_K) = Ω(K), also for randomized protocols. *)

val intersecting : Bits.t -> Bits.t -> bool
(** ¬DISJ — the condition under which the families satisfy their
    predicates. *)

val witness : Bits.t -> Bits.t -> int option
(** Some index with x_i = y_i = 1, if any. *)

val eq : Bits.t -> Bits.t -> bool
(** Equality: CC(EQ_K) = Θ(K) deterministically, O(log K) randomized. *)

val cc_disj_lower_bound : int -> int
(** The Ω(K) bound instantiated with constant 1: [K] bits. *)

val witness_diff : Bits.t -> Bits.t -> int option
(** Some index where x and y differ — the ¬EQ certificate. *)
