let witness x y =
  if Bits.length x <> Bits.length y then invalid_arg "Commfn: length mismatch";
  let rec go i =
    if i >= Bits.length x then None
    else if Bits.get x i && Bits.get y i then Some i
    else go (i + 1)
  in
  go 0

let disj x y = witness x y = None

let intersecting x y = not (disj x y)

let eq x y = Bits.equal x y

let cc_disj_lower_bound k = k

let witness_diff x y =
  if Bits.length x <> Bits.length y then invalid_arg "Commfn: length mismatch";
  let rec go i =
    if i >= Bits.length x then None
    else if Bits.get x i <> Bits.get y i then Some i
    else go (i + 1)
  in
  go 0
