(** The classic randomized protocols of Section 1.3 / 5.2: public-coin
    fingerprinting decides EQ_K with O(log K) bits and one-sided error
    O(1/K), which is why CC_R(EQ) ≪ CC(EQ) = Θ(K) — and why deterministic
    lower bounds via EQ say nothing about randomized algorithms. *)

type outcome = { equal : bool; bits : int }

val eq_fingerprint : seed:int -> Bits.t -> Bits.t -> outcome
(** Evaluate both strings as polynomials modulo a shared random prime;
    Alice ships her residue.  Never errs on equal strings; unequal strings
    collide with probability O(log K / K) per run. *)
