type lit = Pos of int | Neg of int

type clause = One of lit | Two of lit * lit

type t = { nvars : int; clauses : clause list }

let var = function Pos v | Neg v -> v

let negate = function Pos v -> Neg v | Neg v -> Pos v

let make nvars clauses =
  let check l =
    let v = var l in
    if v < 0 || v >= nvars then invalid_arg "Cnf.make: variable out of range"
  in
  List.iter
    (function One l -> check l | Two (a, b) -> check a; check b)
    clauses;
  { nvars; clauses }

let nclauses t = List.length t.clauses

let lit_sat assignment = function
  | Pos v -> assignment.(v)
  | Neg v -> not assignment.(v)

let clause_sat assignment = function
  | One l -> lit_sat assignment l
  | Two (a, b) -> lit_sat assignment a || lit_sat assignment b

let count_sat t assignment =
  List.fold_left
    (fun acc c -> if clause_sat assignment c then acc + 1 else acc)
    0 t.clauses

let max_sat t =
  if t.nvars > 24 then invalid_arg "Cnf.max_sat: nvars > 24";
  let best = ref (-1) and best_assignment = ref [||] in
  let assignment = Array.make t.nvars false in
  for mask = 0 to (1 lsl t.nvars) - 1 do
    for v = 0 to t.nvars - 1 do
      assignment.(v) <- (mask lsr v) land 1 = 1
    done;
    let s = count_sat t assignment in
    if s > !best then begin
      best := s;
      best_assignment := Array.copy assignment
    end
  done;
  (!best, !best_assignment)

let occurrences t =
  let occ = Array.make t.nvars 0 in
  let bump l = occ.(var l) <- occ.(var l) + 1 in
  List.iter (function One l -> bump l | Two (a, b) -> bump a; bump b) t.clauses;
  occ

let literal_occurrences t =
  let pos = Array.make t.nvars 0 and neg = Array.make t.nvars 0 in
  let bump = function
    | Pos v -> pos.(v) <- pos.(v) + 1
    | Neg v -> neg.(v) <- neg.(v) + 1
  in
  List.iter (function One l -> bump l | Two (a, b) -> bump a; bump b) t.clauses;
  (pos, neg)

let pp_lit ppf = function
  | Pos v -> Format.fprintf ppf "x%d" v
  | Neg v -> Format.fprintf ppf "~x%d" v

let pp ppf t =
  Format.fprintf ppf "@[<v>cnf vars=%d clauses=%d@," t.nvars (nclauses t);
  List.iter
    (function
      | One l -> Format.fprintf ppf "(%a)@," pp_lit l
      | Two (a, b) -> Format.fprintf ppf "(%a | %a)@," pp_lit a pp_lit b)
    t.clauses;
  Format.fprintf ppf "@]"
