lib/sat/sat_reductions.mli: Ch_graph Cnf Graph
