lib/sat/sat_reductions.ml: Array Ch_graph Cnf Expander Graph Hashtbl List
