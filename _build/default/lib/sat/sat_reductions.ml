open Ch_graph

let graph_to_cnf g =
  let n = Graph.n g in
  let vertex_clauses = List.init n (fun v -> Cnf.One (Cnf.Pos v)) in
  let edge_clauses =
    List.map (fun (u, v, _) -> Cnf.Two (Cnf.Neg u, Cnf.Neg v)) (Graph.edges g)
  in
  Cnf.make n (vertex_clauses @ edge_clauses)

type expansion = {
  cnf : Cnf.t;
  m_exp : int;
  copies : int list array;
  owner : int array;
  gadget_certified : bool;
}

let expand ?(seed = 0) (phi : Cnf.t) =
  let occ = Cnf.occurrences phi in
  let gadgets =
    Array.init phi.Cnf.nvars (fun v ->
        Expander.build ~seed:(seed + v) (max 1 occ.(v)))
  in
  (* allocate φ′ variables: for each φ-variable, one per gadget vertex *)
  let offset = Array.make phi.Cnf.nvars 0 in
  let total = ref 0 in
  Array.iteri
    (fun v gadget ->
      offset.(v) <- !total;
      total := !total + Graph.n gadget.Expander.graph)
    gadgets;
  let nvars' = !total in
  let owner = Array.make nvars' 0 in
  let copies = Array.make phi.Cnf.nvars [] in
  Array.iteri
    (fun v gadget ->
      let size = Graph.n gadget.Expander.graph in
      copies.(v) <- List.init size (fun i -> offset.(v) + i);
      List.iter (fun c -> owner.(c) <- v) copies.(v))
    gadgets;
  (* distinguished copies replace the occurrences, in clause order *)
  let next_distinguished = Array.make phi.Cnf.nvars 0 in
  let fresh_copy v =
    let gadget = gadgets.(v) in
    let i = next_distinguished.(v) in
    assert (i < Array.length gadget.Expander.distinguished);
    next_distinguished.(v) <- i + 1;
    offset.(v) + gadget.Expander.distinguished.(i)
  in
  let replace = function
    | Cnf.Pos v -> Cnf.Pos (fresh_copy v)
    | Cnf.Neg v -> Cnf.Neg (fresh_copy v)
  in
  let original_clauses =
    List.map
      (function
        | Cnf.One l -> Cnf.One (replace l)
        | Cnf.Two (a, b) ->
            let a' = replace a in
            let b' = replace b in
            Cnf.Two (a', b'))
      phi.Cnf.clauses
  in
  (* expander clauses (¬a ∨ b) and (¬b ∨ a) per gadget edge: a = b *)
  let expander_clauses = ref [] in
  Array.iteri
    (fun v gadget ->
      Graph.iter_edges
        (fun a b _ ->
          let a = offset.(v) + a and b = offset.(v) + b in
          expander_clauses := Cnf.Two (Cnf.Neg a, Cnf.Pos b)
                              :: Cnf.Two (Cnf.Neg b, Cnf.Pos a)
                              :: !expander_clauses)
        gadget.Expander.graph)
    gadgets;
  let m_exp = List.length !expander_clauses in
  let cnf = Cnf.make nvars' (original_clauses @ List.rev !expander_clauses) in
  let gadget_certified =
    Array.for_all (fun g -> g.Expander.certified) gadgets
  in
  { cnf; m_exp; copies; owner; gadget_certified }

type sat_graph = {
  graph : Graph.t;
  slot_var : int array;
  slot_positive : bool array;
  slot_clause : int array;
}

let cnf_to_graph (phi : Cnf.t) =
  let slots = ref [] and count = ref 0 in
  let clause_pairs = ref [] in
  List.iteri
    (fun ci clause ->
      match clause with
      | Cnf.One l ->
          slots := (ci, l) :: !slots;
          incr count
      | Cnf.Two (a, b) ->
          slots := (ci, b) :: (ci, a) :: !slots;
          clause_pairs := (!count, !count + 1) :: !clause_pairs;
          count := !count + 2)
    phi.Cnf.clauses;
  let slots = Array.of_list (List.rev !slots) in
  let n = Array.length slots in
  let graph = Graph.create n in
  let slot_var = Array.map (fun (_, l) -> Cnf.var l) slots in
  let slot_positive =
    Array.map (fun (_, l) -> match l with Cnf.Pos _ -> true | Cnf.Neg _ -> false) slots
  in
  let slot_clause = Array.map fst slots in
  List.iter (fun (a, b) -> Graph.add_edge graph a b) !clause_pairs;
  (* conflict edges between opposite literals of the same variable *)
  let by_var = Array.make phi.Cnf.nvars ([], []) in
  Array.iteri
    (fun i v ->
      let pos, neg = by_var.(v) in
      if slot_positive.(i) then by_var.(v) <- (i :: pos, neg)
      else by_var.(v) <- (pos, i :: neg))
    slot_var;
  Array.iter
    (fun (pos, neg) ->
      List.iter
        (fun p ->
          List.iter
            (fun q -> if not (Graph.mem_edge graph p q) then Graph.add_edge graph p q)
            neg)
        pos)
    by_var;
  { graph; slot_var; slot_positive; slot_clause }

let independent_set_of_assignment (phi : Cnf.t) sg assignment =
  let chosen_clause = Hashtbl.create 16 in
  let n = Graph.n sg.graph in
  let set = ref [] in
  for i = 0 to n - 1 do
    let lit =
      if sg.slot_positive.(i) then Cnf.Pos sg.slot_var.(i)
      else Cnf.Neg sg.slot_var.(i)
    in
    if Cnf.lit_sat assignment lit && not (Hashtbl.mem chosen_clause sg.slot_clause.(i))
    then begin
      Hashtbl.replace chosen_clause sg.slot_clause.(i) ();
      set := i :: !set
    end
  done;
  ignore phi;
  List.rev !set
