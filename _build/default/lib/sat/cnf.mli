(** CNF formulas whose clauses have one or two literals (the shape produced
    by the Section 3 reductions), with exact MAX-2SAT solving by
    enumeration for small variable counts. *)

type lit = Pos of int | Neg of int

type clause = One of lit | Two of lit * lit

type t = { nvars : int; clauses : clause list }

val var : lit -> int

val negate : lit -> lit

val make : int -> clause list -> t
(** Validates that every variable is in [0, nvars). *)

val nclauses : t -> int

val lit_sat : bool array -> lit -> bool

val clause_sat : bool array -> clause -> bool

val count_sat : t -> bool array -> int

val max_sat : t -> int * bool array
(** Exact maximum number of simultaneously satisfiable clauses.
    @raise Invalid_argument when [nvars > 24]. *)

val occurrences : t -> int array
(** How many clauses each variable appears in (counting one per clause
    slot). *)

val literal_occurrences : t -> int array * int array
(** Positive / negative occurrence counts per variable. *)

val pp : Format.formatter -> t -> unit
