open Ch_graph

(** The Section 3.1 reduction chain

      G  →  φ  →  φ′  →  G′

    used to turn a lower-bound family for MaxIS into a bounded-degree one:

    - [graph_to_cnf] (Claim 3.1):      f(φ)  = α(G) + |E(G)|
    - [expand] (Claim 3.3 / Cor 3.1):  f(φ′) = f(φ) + m_exp, every variable
      of φ′ appears in at most 8 clauses, every literal at most 4 times
    - [cnf_to_graph] (Claim 3.4):      α(G′) = f(φ′), max degree 5 *)

val graph_to_cnf : Graph.t -> Cnf.t
(** Variable x_v and clause (x_v) per vertex, clause (¬x_u ∨ ¬x_v) per
    edge.  Vertex clauses come first, in vertex order. *)

type expansion = {
  cnf : Cnf.t;  (** φ′ *)
  m_exp : int;  (** number of expander clauses added *)
  copies : int list array;  (** φ′-variables standing for each φ-variable *)
  owner : int array;  (** original φ-variable of each φ′-variable *)
  gadget_certified : bool;
      (** every Claim 3.2 gadget used was verified exhaustively *)
}

val expand : ?seed:int -> Cnf.t -> expansion
(** Build φ′ from φ.  Original clauses are kept first (in order, with each
    occurrence replaced by a fresh distinguished copy); the 2·|E(G_d)|
    expander clauses follow. *)

type sat_graph = {
  graph : Graph.t;  (** G′ *)
  slot_var : int array;  (** φ′-variable of each vertex of G′ *)
  slot_positive : bool array;  (** literal polarity of each vertex *)
  slot_clause : int array;  (** clause index of each vertex *)
}

val cnf_to_graph : Cnf.t -> sat_graph
(** One vertex per literal occurrence; clause edges plus x/¬x conflict
    edges. *)

val independent_set_of_assignment : Cnf.t -> sat_graph -> bool array -> int list
(** The canonical independent set of G′ induced by an assignment (one
    satisfied literal per satisfied clause); witnesses α(G′) ≥ count_sat. *)
