type t = { p : int }

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let next_prime n =
  let rec go n = if is_prime n then n else go (n + 1) in
  go (max 2 n)

let create p =
  if not (is_prime p) then invalid_arg "Gf.create: modulus must be prime";
  { p }

let order f = f.p

let norm f x =
  let r = x mod f.p in
  if r < 0 then r + f.p else r

let add f a b = norm f (a + b)

let sub f a b = norm f (a - b)

let mul f a b = norm f (norm f a * norm f b)

let rec pow f x e =
  if e < 0 then invalid_arg "Gf.pow: negative exponent"
  else if e = 0 then 1
  else begin
    let h = pow f x (e / 2) in
    let h2 = mul f h h in
    if e mod 2 = 0 then h2 else mul f h2 x
  end

let inv f x =
  let x = norm f x in
  if x = 0 then raise Division_by_zero;
  pow f x (f.p - 2)

let div f a b = mul f a (inv f b)

let eval_poly f coeffs x =
  Array.fold_right (fun c acc -> add f (mul f acc x) c) coeffs 0
