(** Reed–Solomon codes with parameters (N, κ, N−κ+1, q), q prime > N
    (cf. Section 4.1 of the paper): a message of κ field symbols is the
    coefficient vector of a polynomial of degree < κ, and the codeword is
    its evaluation at the points 0..N−1. *)

type t

val create : len:int -> dim:int -> q:int -> t
(** @raise Invalid_argument unless [q] is a prime > len >= dim >= 1. *)

val length : t -> int

val dimension : t -> int

val field_order : t -> int

val distance : t -> int
(** The designed (and actual) minimum distance N − κ + 1. *)

val encode : t -> int array -> int array
(** Encode a message of [dim] symbols in [0, q). *)

val hamming : int array -> int array -> int

val injection : t -> int -> int array array
(** [injection code k]: the codewords of the first [k] messages in
    lexicographic (base-q digit) order — the paper's injection
    g : [k] → C.  @raise Invalid_argument when [k > q^dim]. *)
