type t = { len : int; dim : int; field : Gf.t }

let create ~len ~dim ~q =
  if dim < 1 || len < dim then invalid_arg "Reed_solomon.create: need len >= dim >= 1";
  if q <= len then invalid_arg "Reed_solomon.create: need q > len";
  { len; dim; field = Gf.create q }

let length t = t.len

let dimension t = t.dim

let field_order t = Gf.order t.field

let distance t = t.len - t.dim + 1

let encode t msg =
  if Array.length msg <> t.dim then invalid_arg "Reed_solomon.encode: bad length";
  Array.iter
    (fun c -> if c < 0 || c >= Gf.order t.field then invalid_arg "Reed_solomon.encode: symbol")
    msg;
  Array.init t.len (fun x -> Gf.eval_poly t.field msg x)

let hamming a b =
  if Array.length a <> Array.length b then invalid_arg "Reed_solomon.hamming";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d

let injection t k =
  let q = Gf.order t.field in
  let capacity =
    let rec go acc i = if i = 0 then acc else go (acc * q) (i - 1) in
    go 1 t.dim
  in
  if k > capacity then invalid_arg "Reed_solomon.injection: k too large";
  Array.init k (fun i ->
      let msg = Array.make t.dim 0 in
      let rest = ref i in
      for j = 0 to t.dim - 1 do
        msg.(j) <- !rest mod q;
        rest := !rest / q
      done;
      encode t msg)
