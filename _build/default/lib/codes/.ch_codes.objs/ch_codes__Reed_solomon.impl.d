lib/codes/reed_solomon.ml: Array Gf
