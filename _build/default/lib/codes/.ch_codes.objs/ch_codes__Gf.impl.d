lib/codes/gf.ml: Array
