lib/codes/reed_solomon.mli:
