lib/codes/gf.mli:
