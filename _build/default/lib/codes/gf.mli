(** Arithmetic in the prime field GF(p).  The paper's Section 4.1 uses any
    prime power q > N; primes suffice for every parameter choice here. *)

type t
(** A field, carrying its prime modulus. *)

val create : int -> t
(** @raise Invalid_argument when the modulus is not a prime at least 2. *)

val order : t -> int

val is_prime : int -> bool

val next_prime : int -> int
(** Smallest prime >= the argument. *)

val add : t -> int -> int -> int

val sub : t -> int -> int -> int

val mul : t -> int -> int -> int

val inv : t -> int -> int
(** @raise Division_by_zero on 0. *)

val div : t -> int -> int -> int

val pow : t -> int -> int -> int
(** [pow f x e] for [e >= 0]. *)

val eval_poly : t -> int array -> int -> int
(** Evaluate a polynomial given by its coefficient array (index = degree)
    at a point. *)
