open Ch_graph

(** Minimum 2-edge-connected spanning subgraph (2-ECSS), by exhaustive
    search over edge subsets of increasing size.  Claim 2.7 of the paper:
    G has a 2-ECSS with exactly n edges iff G has a Hamiltonian cycle. *)

val is_2ecss : Graph.t -> (int * int) list -> bool
(** Is the given edge subset a spanning 2-edge-connected subgraph? *)

val min_edges : ?cap:int -> Graph.t -> int option
(** Minimum number of edges of a 2-ECSS; [None] when none exists within
    [cap] edges (default: all). *)

val exists_with_edges : Graph.t -> int -> bool
(** Is there a 2-ECSS with at most the given number of edges? *)
