open Ch_graph

(** Exact minimum-weight 2-spanner: the cheapest subgraph H of G in which
    every edge {u,v} of G is either present or closed by a 2-path.
    Branch and bound over covering options; intended for small instances. *)

val is_2_spanner : Graph.t -> (int * int) list -> bool

val min_weight_2_spanner : Graph.t -> int * (int * int) list
(** Total weight of chosen edges and the chosen edge set. *)
