open Ch_graph

(** Exact maximum (weight) independent set, and the complementary minimum
    vertex cover.

    Branch and bound over vertex bitsets with connected-component
    decomposition, kernelization rules (isolated, pendant, triangle
    degree-2, domination) and a greedy clique-cover upper bound.  Handles
    the two instance shapes this repository produces: dense clique-heavy
    code gadgets (~150 vertices) and sparse bounded-degree SAT graphs
    (several hundred vertices). *)

val max_weight_set : ?weights:int array -> Graph.t -> int * int list
(** Maximum-weight independent set; weights default to the graph's vertex
    weights.  Returns the weight and a witness set (sorted). *)

val alpha : Graph.t -> int
(** α(G): maximum cardinality of an independent set. *)

val max_independent_set : Graph.t -> int list
(** A maximum-cardinality independent set. *)

val is_independent : Graph.t -> int list -> bool

val min_vertex_cover_size : Graph.t -> int
(** τ(G) = n − α(G). *)

val min_vertex_cover : Graph.t -> int list
