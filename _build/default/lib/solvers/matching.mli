open Ch_graph

(** Maximum cardinality matching in general graphs (Edmonds' blossom
    algorithm, O(V^3)), plus the Tutte–Berge certificate used by the
    proof-labeling scheme for [ν(G) < k]. *)

val maximum_matching : Graph.t -> (int * int) list
(** A maximum matching as a list of edges (u < v). *)

val nu : Graph.t -> int
(** ν(G): size of a maximum matching. *)

val is_matching : Graph.t -> (int * int) list -> bool

val tutte_berge_deficiency : Graph.t -> int list -> int
(** [odd(G−U) − |U|] for a vertex set [U]: by the Tutte–Berge formula,
    ν(G) = (n − max_U deficiency(U)) / 2. *)

val tutte_berge_witness : Graph.t -> int list
(** A set [U] maximizing the deficiency (so it certifies the value of ν).
    Exhaustive search — intended for the small PLS instances.
    @raise Invalid_argument when [n > 20]. *)
