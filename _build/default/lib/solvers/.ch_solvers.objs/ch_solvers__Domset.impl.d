lib/solvers/domset.ml: Array Bitset Ch_graph Fun Graph List Option Props
