lib/solvers/flow.ml: Array Ch_graph List Queue
