lib/solvers/steiner.ml: Array Ch_graph Digraph Fun Graph List Option Set Union_find
