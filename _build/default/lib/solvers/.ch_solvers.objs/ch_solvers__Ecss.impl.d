lib/solvers/ecss.ml: Ch_graph Graph List Props
