lib/solvers/mis.mli: Ch_graph Graph
