lib/solvers/spanner.mli: Ch_graph Graph
