lib/solvers/domset.mli: Ch_graph Graph
