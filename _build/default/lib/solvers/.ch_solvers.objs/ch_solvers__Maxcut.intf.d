lib/solvers/maxcut.mli: Ch_graph Graph
