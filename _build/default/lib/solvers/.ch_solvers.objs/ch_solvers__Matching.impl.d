lib/solvers/matching.ml: Array Ch_graph Fun Graph List Props Queue
