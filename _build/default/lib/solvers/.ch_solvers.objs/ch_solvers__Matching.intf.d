lib/solvers/matching.mli: Ch_graph Graph
