lib/solvers/hamilton.ml: Array Bitset Ch_graph Digraph Fun Graph List
