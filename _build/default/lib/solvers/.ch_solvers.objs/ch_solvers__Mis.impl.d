lib/solvers/mis.ml: Array Bitset Ch_graph Fun Graph List Option
