lib/solvers/flow.mli: Ch_graph Graph
