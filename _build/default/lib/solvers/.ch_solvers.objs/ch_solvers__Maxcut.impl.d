lib/solvers/maxcut.ml: Array Ch_graph Graph List Random
