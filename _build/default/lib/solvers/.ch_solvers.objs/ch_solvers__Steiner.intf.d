lib/solvers/steiner.mli: Ch_graph Digraph Graph
