lib/solvers/spanner.ml: Array Ch_graph Graph Hashtbl List
