lib/solvers/ecss.mli: Ch_graph Graph
