lib/solvers/hamilton.mli: Ch_graph Digraph Graph
