type t = {
  n : int;
  (* edge i: to.(i), cap.(i) residual; edge i lxor 1 is its reverse *)
  mutable eto : int array;
  mutable cap : int array;
  mutable orig_cap : int array;
  mutable edge_count : int;
  head : int list array; (* incident edge ids per vertex *)
}

let create n =
  {
    n;
    eto = Array.make 16 0;
    cap = Array.make 16 0;
    orig_cap = Array.make 16 0;
    edge_count = 0;
    head = Array.make n [];
  }

let n t = t.n

let ensure t needed =
  let len = Array.length t.eto in
  if needed > len then begin
    let grow a = Array.append a (Array.make (max len needed) 0) in
    t.eto <- grow t.eto;
    t.cap <- grow t.cap;
    t.orig_cap <- grow t.orig_cap
  end

let add_edge t u v ~cap =
  if cap < 0 then invalid_arg "Flow.add_edge: negative capacity";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then invalid_arg "Flow.add_edge: vertex";
  ensure t (t.edge_count + 2);
  let e = t.edge_count in
  t.eto.(e) <- v;
  t.cap.(e) <- cap;
  t.orig_cap.(e) <- cap;
  t.eto.(e + 1) <- u;
  t.cap.(e + 1) <- 0;
  t.orig_cap.(e + 1) <- 0;
  t.head.(u) <- e :: t.head.(u);
  t.head.(v) <- (e + 1) :: t.head.(v);
  t.edge_count <- t.edge_count + 2

let of_graph g =
  let t = create (Ch_graph.Graph.n g) in
  Ch_graph.Graph.iter_edges
    (fun u v w ->
      add_edge t u v ~cap:w;
      add_edge t v u ~cap:w)
    g;
  t

let reset t =
  Array.blit t.orig_cap 0 t.cap 0 t.edge_count

let bfs_levels t s =
  let level = Array.make t.n (-1) in
  let queue = Queue.create () in
  level.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let v = Queue.take queue in
    List.iter
      (fun e ->
        let u = t.eto.(e) in
        if t.cap.(e) > 0 && level.(u) = -1 then begin
          level.(u) <- level.(v) + 1;
          Queue.add u queue
        end)
      t.head.(v)
  done;
  level

let max_flow t ~s ~t:sink =
  if s = sink then invalid_arg "Flow.max_flow: s = t";
  reset t;
  let total = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let level = bfs_levels t s in
    if level.(sink) = -1 then continue_ := false
    else begin
      let iter = Array.make t.n [] in
      for v = 0 to t.n - 1 do
        iter.(v) <- t.head.(v)
      done;
      let rec push v limit =
        if v = sink then limit
        else begin
          let sent = ref 0 in
          let go = ref true in
          while !go && !sent < limit do
            match iter.(v) with
            | [] -> go := false
            | e :: rest ->
                let u = t.eto.(e) in
                if t.cap.(e) > 0 && level.(u) = level.(v) + 1 then begin
                  let got = push u (min (limit - !sent) t.cap.(e)) in
                  if got > 0 then begin
                    t.cap.(e) <- t.cap.(e) - got;
                    t.cap.(e lxor 1) <- t.cap.(e lxor 1) + got;
                    sent := !sent + got
                  end
                  else iter.(v) <- rest
                end
                else iter.(v) <- rest
          done;
          !sent
        end
      in
      let pushed = push s max_int in
      if pushed = 0 then continue_ := false else total := !total + pushed
    end
  done;
  !total

let min_cut_side t ~s ~t:sink =
  ignore (max_flow t ~s ~t:sink);
  let level = bfs_levels t s in
  Array.map (fun l -> l <> -1) level

let flow_on_edges t =
  let acc = ref [] in
  let e = ref 0 in
  while !e < t.edge_count do
    let i = !e in
    let flow = t.orig_cap.(i) - t.cap.(i) in
    if flow > 0 then acc := (t.eto.(i + 1), t.eto.(i), flow) :: !acc;
    e := !e + 2
  done;
  List.sort compare !acc
