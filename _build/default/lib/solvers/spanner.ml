open Ch_graph

let norm (u, v) = if u <= v then (u, v) else (v, u)

let is_2_spanner g edges =
  let chosen = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      assert (Graph.mem_edge g u v);
      Hashtbl.replace chosen (norm (u, v)) ())
    edges;
  let has e = Hashtbl.mem chosen (norm e) in
  let covered (u, v) =
    has (u, v)
    || List.exists
         (fun w -> Graph.mem_edge g w v && has (u, w) && has (w, v))
         (Graph.neighbors g u)
  in
  let ok = ref true in
  Graph.iter_edges (fun u v _ -> if not (covered (u, v)) then ok := false) g;
  !ok

(* Branch over the ways to cover an uncovered edge: either take it, or take
   one of its 2-paths.  Chosen/forbidden sets are edge-indexed. *)
let min_weight_2_spanner g =
  let edges = Array.of_list (Graph.edges g) in
  let m = Array.length edges in
  let index = Hashtbl.create m in
  Array.iteri (fun i (u, v, _) -> Hashtbl.replace index (u, v) i) edges;
  let idx u v = Hashtbl.find index (norm (u, v)) in
  let weight i = let _, _, w = edges.(i) in w in
  let options = Array.make m [] in
  (* options.(i): ways to cover edge i, each a list of edge indices *)
  Array.iteri
    (fun i (u, v, _) ->
      let two_paths =
        List.filter_map
          (fun w ->
            if w <> v && Graph.mem_edge g w v then Some [ idx u w; idx w v ]
            else None)
          (Graph.neighbors g u)
      in
      options.(i) <- [ i ] :: two_paths)
    edges;
  let best_w = ref max_int and best = ref [] in
  let chosen = Array.make m false in
  (* zero-weight edges are free and coverage is monotone: take them all *)
  Array.iteri (fun i (_, _, w) -> if w = 0 then chosen.(i) <- true) edges;
  let cost_of opt =
    List.fold_left (fun acc e -> if chosen.(e) then acc else acc + weight e) 0 opt
  in
  let rec uncovered_edge i =
    if i >= m then None
    else if
      List.exists (fun opt -> List.for_all (fun e -> chosen.(e)) opt) options.(i)
    then uncovered_edge (i + 1)
    else Some i
  in
  let rec go acc =
    if acc < !best_w then
      match uncovered_edge 0 with
      | None ->
          best_w := acc;
          best :=
            List.filteri (fun i _ -> chosen.(i)) (Array.to_list edges)
            |> List.map (fun (u, v, _) -> (u, v))
          (* note: the pre-taken zero-weight edges stay in the witness *)
      | Some i ->
          (* any 2-spanner contains one of the covering options in full *)
          List.iter
            (fun opt ->
              let added = List.filter (fun e -> not chosen.(e)) opt in
              let extra = cost_of opt in
              List.iter (fun e -> chosen.(e) <- true) added;
              go (acc + extra);
              List.iter (fun e -> chosen.(e) <- false) added)
            options.(i)
  in
  go 0;
  if !best_w = max_int then invalid_arg "Spanner: no 2-spanner (impossible)"
  else (!best_w, List.sort compare !best)
