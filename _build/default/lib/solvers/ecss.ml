open Ch_graph

let subgraph_of g edge_subset =
  let h = Graph.create (Graph.n g) in
  List.iter
    (fun (u, v) ->
      assert (Graph.mem_edge g u v);
      Graph.add_edge h u v)
    edge_subset;
  h

let is_2ecss g edge_subset =
  let h = subgraph_of g edge_subset in
  (* spanning: every vertex of G must appear with degree >= 2, which
     2-edge-connectivity of the full vertex set implies *)
  Props.is_two_edge_connected h

let min_edges ?cap g =
  let n = Graph.n g in
  let all_edges = List.map (fun (u, v, _) -> (u, v)) (Graph.edges g) in
  let m = List.length all_edges in
  let cap = match cap with Some c -> min c m | None -> m in
  if n < 2 then None
  else begin
    let exception Hit of int in
    let rec choose pool k acc =
      if k = 0 then begin
        if is_2ecss g acc then raise (Hit (List.length acc))
      end
      else
        match pool with
        | [] -> ()
        | e :: rest ->
            if List.length pool >= k then begin
              choose rest (k - 1) (e :: acc);
              choose rest k acc
            end
    in
    (* a 2-ECSS needs at least n edges (all degrees >= 2) *)
    let rec sizes s =
      if s > cap then None
      else
        match choose all_edges s [] with
        | () -> sizes (s + 1)
        | exception Hit found -> Some found
    in
    sizes n
  end

let exists_with_edges g bound =
  match min_edges ~cap:bound g with Some s -> s <= bound | None -> false
