open Ch_graph

(** Maximum s-t flow / minimum s-t cut (Dinic's algorithm) on directed
    networks with integer capacities. *)

type t

val create : int -> t

val n : t -> int

val add_edge : t -> int -> int -> cap:int -> unit
(** Directed edge with the given capacity (reverse residual capacity 0). *)

val of_graph : Graph.t -> t
(** Every undirected edge of weight w becomes a pair of directed edges of
    capacity w. *)

val max_flow : t -> s:int -> t:int -> int
(** Runs Dinic; resets any previous flow first. *)

val min_cut_side : t -> s:int -> t:int -> bool array
(** Runs {!max_flow} and returns the source side of a minimum cut
    (vertices reachable from [s] in the residual network). *)

val flow_on_edges : t -> (int * int * int) list
(** After {!max_flow}: the positive flow carried by each original edge. *)
