open Ch_graph

(* Edmonds' blossom algorithm, array formulation. *)
let solve g =
  let n = Graph.n g in
  let adj = Array.init n (fun v -> Array.of_list (Graph.neighbors g v)) in
  let mate = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let base = Array.make n 0 in
  let used = Array.make n false in
  let blossom = Array.make n false in
  let queue = Queue.create () in

  let lca a b =
    let seen = Array.make n false in
    let v = ref a in
    (let continue_ = ref true in
     while !continue_ do
       v := base.(!v);
       seen.(!v) <- true;
       if mate.(!v) = -1 then continue_ := false else v := parent.(mate.(!v))
     done);
    let v = ref b in
    let result = ref (-1) in
    while !result = -1 do
      v := base.(!v);
      if seen.(!v) then result := !v else v := parent.(mate.(!v))
    done;
    !result
  in

  let mark_path v b child =
    let v = ref v and child = ref child in
    while base.(!v) <> b do
      blossom.(base.(!v)) <- true;
      blossom.(base.(mate.(!v))) <- true;
      parent.(!v) <- !child;
      child := mate.(!v);
      v := parent.(mate.(!v))
    done
  in

  let find_path root =
    Array.fill used 0 n false;
    Array.fill parent 0 n (-1);
    for i = 0 to n - 1 do
      base.(i) <- i
    done;
    Queue.clear queue;
    used.(root) <- true;
    Queue.add root queue;
    let result = ref (-1) in
    (try
       while not (Queue.is_empty queue) do
         let v = Queue.take queue in
         Array.iter
           (fun u ->
             if base.(v) <> base.(u) && mate.(v) <> u then
               if u = root || (mate.(u) <> -1 && parent.(mate.(u)) <> -1) then begin
                 (* odd cycle: contract the blossom *)
                 let cur_base = lca v u in
                 Array.fill blossom 0 n false;
                 mark_path v cur_base u;
                 mark_path u cur_base v;
                 for i = 0 to n - 1 do
                   if blossom.(base.(i)) then begin
                     base.(i) <- cur_base;
                     if not used.(i) then begin
                       used.(i) <- true;
                       Queue.add i queue
                     end
                   end
                 done
               end
               else if parent.(u) = -1 then begin
                 parent.(u) <- v;
                 if mate.(u) = -1 then begin
                   result := u;
                   raise Exit
                 end
                 else begin
                   used.(mate.(u)) <- true;
                   Queue.add mate.(u) queue
                 end
               end)
           adj.(v)
       done
     with Exit -> ());
    !result
  in

  for root = 0 to n - 1 do
    if mate.(root) = -1 then begin
      let v = ref (find_path root) in
      while !v <> -1 do
        let pv = parent.(!v) in
        let ppv = mate.(pv) in
        mate.(!v) <- pv;
        mate.(pv) <- !v;
        v := ppv
      done
    end
  done;
  mate

let maximum_matching g =
  let mate = solve g in
  let acc = ref [] in
  Array.iteri (fun v u -> if u <> -1 && v < u then acc := (v, u) :: !acc) mate;
  List.sort compare !acc

let nu g = List.length (maximum_matching g)

let is_matching g edges =
  List.for_all (fun (u, v) -> Graph.mem_edge g u v) edges
  &&
  let touched = List.concat_map (fun (u, v) -> [ u; v ]) edges in
  List.length touched = List.length (List.sort_uniq compare touched)

let tutte_berge_deficiency g u_set =
  let n = Graph.n g in
  let in_u = Array.make n false in
  List.iter (fun v -> in_u.(v) <- true) u_set;
  let rest = List.filter (fun v -> not in_u.(v)) (List.init n Fun.id) in
  let sub, map = Graph.induced g rest in
  let comp, count = Props.components sub in
  let sizes = Array.make count 0 in
  Array.iteri (fun v c -> ignore map.(v); sizes.(c) <- sizes.(c) + 1) comp;
  let odd = Array.fold_left (fun acc s -> if s mod 2 = 1 then acc + 1 else acc) 0 sizes in
  odd - List.length u_set

let tutte_berge_witness g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Matching.tutte_berge_witness: n > 20";
  let best = ref [] and best_def = ref (tutte_berge_deficiency g []) in
  for mask = 1 to (1 lsl n) - 1 do
    let u_set = List.filter (fun v -> (mask lsr v) land 1 = 1) (List.init n Fun.id) in
    let d = tutte_berge_deficiency g u_set in
    if d > !best_def then begin
      best_def := d;
      best := u_set
    end
  done;
  !best
