lib/core/framework.mli: Bits Ch_cc Ch_graph Digraph Graph
