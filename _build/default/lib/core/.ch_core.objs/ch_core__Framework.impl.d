lib/core/framework.ml: Array Bits Ch_cc Ch_congest Ch_graph Commfn Digraph Fun Graph List
