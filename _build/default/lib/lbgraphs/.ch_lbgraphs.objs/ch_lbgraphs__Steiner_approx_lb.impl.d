lib/lbgraphs/steiner_approx_lb.ml: Array Bits Ch_cc Ch_core Ch_graph Ch_solvers Commfn Covering Digraph Framework Fun Graph List
