lib/lbgraphs/hampath_lb.mli: Bits Ch_cc Ch_core Ch_graph Digraph Mds_lb
