lib/lbgraphs/bounded_degree.mli: Bits Ch_cc Ch_graph Graph
