lib/lbgraphs/maxcut_lb.mli: Bits Ch_cc Ch_core Ch_graph Graph Mds_lb
