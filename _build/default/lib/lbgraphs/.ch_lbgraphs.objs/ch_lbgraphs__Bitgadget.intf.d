lib/lbgraphs/bitgadget.mli:
