lib/lbgraphs/hampath_lb.ml: Array Bitgadget Bits Ch_cc Ch_congest Ch_core Ch_graph Ch_solvers Commfn Digraph Framework Hashtbl List Mds_lb Transform
