lib/lbgraphs/steiner_lb.ml: Array Bitgadget Ch_core Ch_graph Ch_solvers Framework Fun Graph List Mds_lb
