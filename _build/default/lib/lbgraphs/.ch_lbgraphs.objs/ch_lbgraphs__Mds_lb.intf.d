lib/lbgraphs/mds_lb.mli: Bits Ch_cc Ch_core Ch_graph Graph
