lib/lbgraphs/maxcut_lb.ml: Array Bitgadget Bits Ch_cc Ch_core Ch_graph Ch_solvers Commfn Framework Graph List Mds_lb
