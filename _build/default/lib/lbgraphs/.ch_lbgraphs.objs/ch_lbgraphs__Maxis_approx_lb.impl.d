lib/lbgraphs/maxis_approx_lb.ml: Array Bitgadget Bits Ch_cc Ch_codes Ch_core Ch_graph Ch_solvers Commfn Framework Gf Graph List Mds_lb Reed_solomon
