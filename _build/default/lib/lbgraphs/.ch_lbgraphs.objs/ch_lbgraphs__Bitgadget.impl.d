lib/lbgraphs/bitgadget.ml: Fun List
