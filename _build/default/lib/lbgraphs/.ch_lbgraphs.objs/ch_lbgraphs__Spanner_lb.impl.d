lib/lbgraphs/spanner_lb.ml: Array Ch_core Ch_graph Ch_solvers Framework Graph Mds_lb
