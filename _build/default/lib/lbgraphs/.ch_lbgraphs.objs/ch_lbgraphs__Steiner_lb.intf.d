lib/lbgraphs/steiner_lb.mli: Ch_core
