lib/lbgraphs/spanner_lb.mli: Bits Ch_cc Ch_core Ch_graph
