lib/lbgraphs/steiner_approx_lb.mli: Bits Ch_cc Ch_core Covering
