lib/lbgraphs/kmds_lb.ml: Array Bits Ch_cc Ch_core Ch_graph Ch_solvers Commfn Covering Framework Graph List Printf
