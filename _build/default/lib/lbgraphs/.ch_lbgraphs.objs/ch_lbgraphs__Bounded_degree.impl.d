lib/lbgraphs/bounded_degree.ml: Array Ch_graph Ch_sat Ch_solvers Graph Maxis_lb Sat_reductions
