lib/lbgraphs/covering.ml: Array List Random
