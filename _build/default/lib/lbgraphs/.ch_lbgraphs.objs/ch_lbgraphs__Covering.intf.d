lib/lbgraphs/covering.mli:
