lib/lbgraphs/mds_lb.ml: Array Bitgadget Bits Ch_cc Ch_core Ch_graph Ch_solvers Commfn Framework Graph List
