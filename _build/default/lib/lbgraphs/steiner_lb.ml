open Ch_graph
open Ch_core

let target_edges ~k = (4 * k) + (16 * Bitgadget.log2 k) + 1

let terminals ~k = List.init (Mds_lb.Ix.n ~k) Fun.id

let transform ~k inst =
  let g =
    match inst with
    | Framework.Undirected g -> g
    | _ -> invalid_arg "Steiner_lb: undirected expected"
  in
  let n = Graph.n g in
  let side = Mds_lb.side ~k in
  let g' = Graph.create (2 * n) in
  let copy v = n + v in
  Graph.iter_edges
    (fun u v _ ->
      Graph.add_edge g' (copy u) v;
      Graph.add_edge g' (copy v) u)
    g;
  for v = 0 to n - 1 do
    Graph.add_edge g' (copy v) v
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if side.(u) = side.(v) then Graph.add_edge g' (copy u) (copy v)
    done
  done;
  let f0a1 = Mds_lb.Ix.f ~k Mds_lb.A1 0
  and t0a1 = Mds_lb.Ix.t ~k Mds_lb.A1 0
  and f0b1 = Mds_lb.Ix.f ~k Mds_lb.B1 0
  and t0b1 = Mds_lb.Ix.t ~k Mds_lb.B1 0 in
  Graph.add_edge g' (copy f0a1) (copy f0b1);
  Graph.add_edge g' (copy t0a1) (copy t0b1);
  Framework.With_terminals (g', terminals ~k)

let family ~k =
  let t = Bitgadget.check_k "Steiner_lb" k in
  let base = Mds_lb.family ~k in
  let n = base.Framework.nvertices in
  let side' = Array.append base.Framework.side base.Framework.side in
  let extra_budget = (4 * t) + 2 in
  Framework.reduce ~name:"steiner-tree (Thm 2.7)"
    ~transform:(transform ~k) ~nvertices:(2 * n) ~side:side'
    ~predicate:(fun inst ->
      match inst with
      | Framework.With_terminals (g, terms) -> (
          (* a Steiner tree with target_edges edges = terminals plus
             extra_budget connector copies *)
          match
            Ch_solvers.Steiner.min_extra_nodes ~cap:extra_budget g terms
          with
          | Some extra -> extra <= extra_budget
          | None -> false)
      | _ -> invalid_arg "steiner family: terminals expected")
    base
