type t = { ell : int; r : int; sets : int array }

let full_mask ell = (1 lsl ell) - 1

let property_holds ~ell ~r sets =
  let t_count = Array.length sets in
  let full = full_mask ell in
  (* choose r indices and polarities; complementary pairs are excluded by
     construction (one polarity per chosen index) *)
  let rec choose idx remaining union =
    if remaining = 0 then union <> full
    else if idx >= t_count then true
    else if t_count - idx < remaining then true
    else
      choose (idx + 1) remaining union
      && choose (idx + 1) (remaining - 1) (union lor sets.(idx))
      && choose (idx + 1) (remaining - 1) (union lor (lnot sets.(idx) land full))
  in
  choose 0 r 0

(* For r = 2 a deterministic "anchored" collection works: all sets share
   element 0 and are distinct halves of [1, ℓ).  Pairwise unions miss an
   element (sizes are small), complements always share the anchor, and no
   set contains another. *)
let anchored_r2 ~ell ~t_count =
  if ell < 4 then None
  else begin
    let p_size = max 1 ((ell - 2) / 2) in
    (* the first t_count subsets of [1, ℓ) of size p_size, each unioned
       with the anchor {0} *)
    let results = ref [] in
    let rec combos start chosen count =
      if List.length !results >= t_count then ()
      else if count = 0 then results := (1 lor chosen) :: !results
      else
        for e = start to ell - 1 do
          if List.length !results < t_count then
            combos (e + 1) (chosen lor (1 lsl e)) (count - 1)
        done
    in
    combos 1 0 p_size;
    if List.length !results >= t_count then
      Some (Array.of_list (List.rev !results))
    else None
  end

let construct ?(seed = 0) ~ell ~t_count ~r () =
  if ell > 62 then invalid_arg "Covering.construct: ell > 62";
  let deterministic =
    if r = 2 then
      match anchored_r2 ~ell ~t_count with
      | Some sets when property_holds ~ell ~r sets -> Some sets
      | _ -> None
    else None
  in
  match deterministic with
  | Some sets -> { ell; r; sets }
  | None ->
      let densities = [| 0.5; 0.6; 0.4; 0.65; 0.35; 0.55; 0.45 |] in
      let rec go attempt =
        if attempt > 20000 then
          failwith "Covering.construct: no collection found (parameters too tight?)"
        else begin
          let rng = Random.State.make [| seed; attempt |] in
          let density = densities.(attempt mod Array.length densities) in
          let random_set () =
            let mask = ref 0 in
            for e = 0 to ell - 1 do
              if Random.State.float rng 1.0 < density then
                mask := !mask lor (1 lsl e)
            done;
            !mask
          in
          let sets = Array.init t_count (fun _ -> random_set ()) in
          if property_holds ~ell ~r sets then { ell; r; sets }
          else go (attempt + 1)
        end
      in
      go 0

let mem t ~set j = (t.sets.(set) lsr j) land 1 = 1
