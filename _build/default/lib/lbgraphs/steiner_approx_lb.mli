open Ch_cc

(** Section 4.4 (Figure 6): no O(log n)-approximation for the
    node-weighted and the directed Steiner tree problems.

    Both reuse the covering-collection machinery: terminals are the
    element vertices a_j, b_j; connecting them through cheap set vertices
    is possible at cost 2 iff the inputs intersect, and otherwise the
    r-covering property forces cost > r (Lemmas 4.5 and 4.6). *)

type params = { collection : Covering.t; alpha : int }

val make_params : ?seed:int -> ell:int -> t_count:int -> r:int -> unit -> params

val terminals : params -> int list

val node_weighted_family : params -> Ch_core.Framework.t
(** Theorem 4.6: node-weighted Steiner tree, predicate: cost ≤ 2. *)

val directed_family : params -> Ch_core.Framework.t
(** Theorem 4.7: directed Steiner tree rooted at R, predicate: cost ≤ 2. *)

val node_weighted_gap_holds : params -> Bits.t -> Bits.t -> bool

val directed_gap_holds : params -> Bits.t -> Bits.t -> bool
