(** The Theorem 2.7 family: minimum Steiner tree, by the Theorem 2.6
    reduction from the MDS family (Section 2.3.2).

    Every vertex v of the MDS graph gets a copy ṽ; identity edges (ṽ,v),
    "original" edges (ũ,v) and (ṽ,u) per MDS edge {u,v}, cliques on Ṽ_A
    and Ṽ_B, and exactly two crossing edges (f̃⁰_{A1}, f̃⁰_{B1}) and
    (t̃⁰_{A1}, t̃⁰_{B1}).  With the original vertices as terminals, a
    Steiner tree with 4k + 16·log k + 1 edges exists iff the MDS instance
    has a dominating set of size 4·log k + 2, i.e. iff DISJ(x,y) =
    FALSE. *)

val target_edges : k:int -> int
(** 4k + 16·log k + 1. *)

val terminals : k:int -> int list
(** The original vertices 0 .. n−1. *)

val family : k:int -> Ch_core.Framework.t
