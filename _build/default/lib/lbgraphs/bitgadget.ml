let is_power_of_two k = k > 0 && k land (k - 1) = 0

let log2 k =
  if not (is_power_of_two k) then invalid_arg "Bitgadget.log2";
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 k

let bit i h = (i lsr h) land 1 = 1

let check_k name k =
  if k < 2 || not (is_power_of_two k) then
    invalid_arg (name ^ ": k must be a power of two, at least 2");
  log2 k

let indices_with_bit ~k ~h ~value =
  List.filter (fun i -> bit i h = value) (List.init k Fun.id)
