(** Shared helpers for the bit-gadget constructions: binary representations
    and the paper's parameter conventions. *)

val is_power_of_two : int -> bool

val log2 : int -> int
(** Exact log₂ of a power of two. *)

val bit : int -> int -> bool
(** [bit i h] is the h-th bit of i. *)

val check_k : string -> int -> int
(** Validates that k is a power of two at least 2; returns t = log₂ k. *)

val indices_with_bit : k:int -> h:int -> value:bool -> int list
(** All i ∈ [k] whose h-th bit equals [value], ascending — the wheel
    ordering of the Hamiltonian-path construction. *)
