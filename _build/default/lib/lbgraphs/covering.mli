(** r-covering collections (Lemma 4.2, after [40]): a collection
    S₁, …, S_T of subsets of [ℓ] such that any r sets drawn from
    \{Sᵢ, S̄ᵢ\} containing no complementary pair leave some element of [ℓ]
    uncovered.  Used by the 2-MDS / k-MDS / Steiner-variant gap
    constructions.

    Sets are bit masks over ℓ ≤ 30 elements. *)

type t = { ell : int; r : int; sets : int array }

val property_holds : ell:int -> r:int -> int array -> bool
(** Exhaustive check over all polarity choices of all r-subsets. *)

val construct : ?seed:int -> ell:int -> t_count:int -> r:int -> unit -> t
(** Random construction with exhaustive verification, retrying until the
    property holds.  @raise Failure after too many attempts. *)

val mem : t -> set:int -> int -> bool
(** Is element j in S_set? *)
