open Ch_graph
open Ch_cc
open Ch_codes
open Ch_core

type params = { k : int; ell : int; t : int; q : int }

let make_params ?ell ~k () =
  let t = Bitgadget.check_k "Maxis_approx_lb" k in
  let ell = match ell with Some e -> e | None -> max 2 (t * t) in
  let q = Gf.next_prime (ell + t + 1) in
  { k; ell; t; q }

let yes_weight p = (8 * p.ell) + (4 * p.t)

let no_weight p = (7 * p.ell) + (4 * p.t)

let code p = Reed_solomon.create ~len:(p.ell + p.t) ~dim:p.t ~q:p.q

let codewords p = Reed_solomon.injection (code p) p.k

(* ------------------------------------------------------------------ *)
(* Weighted construction (Theorem 4.3)                                *)
(* ------------------------------------------------------------------ *)

(* layout: rows 0..4k-1 (weight ℓ); then per set S a block of (ℓ+t)·q
   gadget vertices (weight 1): (S, j, α) *)
module WIx = struct
  let row p s i =
    assert (i >= 0 && i < p.k);
    (Mds_lb.set_index s * p.k) + i

  let gadget p s j alpha =
    (4 * p.k)
    + (Mds_lb.set_index s * (p.ell + p.t) * p.q)
    + (j * p.q) + alpha

  let n p = (4 * p.k) + (4 * (p.ell + p.t) * p.q)
end

let add_common_structure p g ~row_vertices ~gadget =
  let words = codewords p in
  let sets = [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ] in
  (* gadget row cliques *)
  List.iter
    (fun s ->
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          for b = a + 1 to p.q - 1 do
            Graph.add_edge g (gadget s j a) (gadget s j b)
          done
        done
      done)
    sets;
  (* cross edges minus a perfect matching *)
  List.iter
    (fun (sa, sb) ->
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          for b = 0 to p.q - 1 do
            if a <> b then Graph.add_edge g (gadget sa j a) (gadget sb j b)
          done
        done
      done)
    [ (Mds_lb.A1, Mds_lb.B1); (Mds_lb.A2, Mds_lb.B2) ];
  (* row vertices conflict with the gadget vertices contradicting their
     codeword; row_vertices lists the (set, index, vertex ids) present *)
  List.iter
    (fun (s, i, vertices) ->
      let w = words.(i) in
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          if a <> w.(j) then
            List.iter (fun v -> Graph.add_edge g v (gadget s j a)) vertices
        done
      done)
    row_vertices

let build_weighted p x y =
  if Bits.length x <> p.k * p.k || Bits.length y <> p.k * p.k then
    invalid_arg "Maxis_approx_lb: inputs must have k^2 bits";
  let g = Graph.create (WIx.n p) in
  for v = 0 to (4 * p.k) - 1 do
    Graph.set_vweight g v p.ell
  done;
  let sets = [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ] in
  (* row cliques *)
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        for j = i + 1 to p.k - 1 do
          Graph.add_edge g (WIx.row p s i) (WIx.row p s j)
        done
      done)
    sets;
  let row_vertices =
    List.concat_map
      (fun s -> List.init p.k (fun i -> (s, i, [ WIx.row p s i ])))
      sets
  in
  add_common_structure p g ~row_vertices ~gadget:(WIx.gadget p);
  (* inputs: edge present iff the bit is 0 *)
  for i = 0 to p.k - 1 do
    for j = 0 to p.k - 1 do
      if not (Bits.get_pair ~k:p.k x i j) then
        Graph.add_edge g (WIx.row p Mds_lb.A1 i) (WIx.row p Mds_lb.A2 j);
      if not (Bits.get_pair ~k:p.k y i j) then
        Graph.add_edge g (WIx.row p Mds_lb.B1 i) (WIx.row p Mds_lb.B2 j)
    done
  done;
  g

let weighted_side p =
  let side = Array.make (WIx.n p) false in
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        side.(WIx.row p s i) <- true
      done;
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          side.(WIx.gadget p s j a) <- true
        done
      done)
    [ Mds_lb.A1; Mds_lb.A2 ];
  side

let weighted_family p =
  let target = yes_weight p in
  {
    Framework.name = "maxis-7/8-approx weighted (Thm 4.3)";
    params = [ ("k", p.k); ("ell", p.ell); ("t", p.t); ("q", p.q) ];
    input_bits = p.k * p.k;
    nvertices = WIx.n p;
    side = weighted_side p;
    build = (fun x y -> Framework.Undirected (build_weighted p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> fst (Ch_solvers.Mis.max_weight_set g) >= target
        | _ -> invalid_arg "expected undirected");
    f = Commfn.intersecting;
  }

(* ------------------------------------------------------------------ *)
(* Unweighted construction (Theorem 4.1): rows become ℓ-vertex batches *)
(* ------------------------------------------------------------------ *)

module UIx = struct
  let batch p s i xi =
    assert (xi >= 0 && xi < p.ell);
    ((Mds_lb.set_index s * p.k) + i) * p.ell |> fun base -> base + xi

  let gadget p s j alpha =
    (4 * p.k * p.ell)
    + (Mds_lb.set_index s * (p.ell + p.t) * p.q)
    + (j * p.q) + alpha

  let n p = (4 * p.k * p.ell) + (4 * (p.ell + p.t) * p.q)
end

let build_unweighted p x y =
  if Bits.length x <> p.k * p.k || Bits.length y <> p.k * p.k then
    invalid_arg "Maxis_approx_lb: inputs must have k^2 bits";
  let g = Graph.create (UIx.n p) in
  let sets = [ Mds_lb.A1; Mds_lb.A2; Mds_lb.B1; Mds_lb.B2 ] in
  let batch s i = List.init p.ell (fun xi -> UIx.batch p s i xi) in
  let connect_batches b1 b2 =
    List.iter (fun u -> List.iter (fun v -> Graph.add_edge g u v) b2) b1
  in
  (* row "cliques": complete multipartite between batches of a set *)
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        for j = i + 1 to p.k - 1 do
          connect_batches (batch s i) (batch s j)
        done
      done)
    sets;
  let row_vertices =
    List.concat_map (fun s -> List.init p.k (fun i -> (s, i, batch s i))) sets
  in
  add_common_structure p g ~row_vertices ~gadget:(UIx.gadget p);
  for i = 0 to p.k - 1 do
    for j = 0 to p.k - 1 do
      if not (Bits.get_pair ~k:p.k x i j) then
        connect_batches (batch Mds_lb.A1 i) (batch Mds_lb.A2 j);
      if not (Bits.get_pair ~k:p.k y i j) then
        connect_batches (batch Mds_lb.B1 i) (batch Mds_lb.B2 j)
    done
  done;
  g

let unweighted_side p =
  let side = Array.make (UIx.n p) false in
  List.iter
    (fun s ->
      for i = 0 to p.k - 1 do
        for xi = 0 to p.ell - 1 do
          side.(UIx.batch p s i xi) <- true
        done
      done;
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          side.(UIx.gadget p s j a) <- true
        done
      done)
    [ Mds_lb.A1; Mds_lb.A2 ];
  side

let unweighted_family p =
  let target = yes_weight p in
  {
    Framework.name = "maxis-7/8-approx unweighted (Thm 4.1)";
    params = [ ("k", p.k); ("ell", p.ell); ("t", p.t); ("q", p.q) ];
    input_bits = p.k * p.k;
    nvertices = UIx.n p;
    side = unweighted_side p;
    build = (fun x y -> Framework.Undirected (build_unweighted p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Mis.alpha g >= target
        | _ -> invalid_arg "expected undirected");
    f = Commfn.intersecting;
  }

(* ------------------------------------------------------------------ *)
(* Linear variant (Theorem 4.2): only A₂/B₂ plus batches v_A, v_B      *)
(* ------------------------------------------------------------------ *)

let linear_yes_size p = (6 * p.ell) + (2 * p.t)

(* layout: batch(v_A): 0..ℓ-1; batch(v_B): ℓ..2ℓ-1; then A₂ batches
   (k·ℓ), B₂ batches (k·ℓ); then gadget blocks for A₂ and B₂ *)
module LIx = struct
  let va p xi = assert (xi < p.ell); xi

  let vb p xi = assert (xi < p.ell); p.ell + xi

  let batch p side_b i xi =
    (2 * p.ell) + (((if side_b then p.k else 0) + i) * p.ell) + xi

  let gadget p side_b j alpha =
    (2 * p.ell) + (2 * p.k * p.ell)
    + ((if side_b then (p.ell + p.t) * p.q else 0) + (j * p.q) + alpha)

  let n p = (2 * p.ell) + (2 * p.k * p.ell) + (2 * (p.ell + p.t) * p.q)
end

let build_linear p x y =
  if Bits.length x <> p.k || Bits.length y <> p.k then
    invalid_arg "Maxis_approx_lb.linear: inputs must have k bits";
  let g = Graph.create (LIx.n p) in
  let words = codewords p in
  let batch side_b i = List.init p.ell (fun xi -> LIx.batch p side_b i xi) in
  let va = List.init p.ell (fun xi -> LIx.va p xi) in
  let vb = List.init p.ell (fun xi -> LIx.vb p xi) in
  let connect_batches b1 b2 =
    List.iter (fun u -> List.iter (fun v -> Graph.add_edge g u v) b2) b1
  in
  (* the two remaining row sets are "cliques" of batches *)
  List.iter
    (fun side_b ->
      for i = 0 to p.k - 1 do
        for j = i + 1 to p.k - 1 do
          connect_batches (batch side_b i) (batch side_b j)
        done
      done)
    [ false; true ];
  (* gadget rows, cross edges, code conflicts *)
  List.iter
    (fun side_b ->
      for j = 0 to p.ell + p.t - 1 do
        for a = 0 to p.q - 1 do
          for b = a + 1 to p.q - 1 do
            Graph.add_edge g (LIx.gadget p side_b j a) (LIx.gadget p side_b j b)
          done
        done
      done)
    [ false; true ];
  for j = 0 to p.ell + p.t - 1 do
    for a = 0 to p.q - 1 do
      for b = 0 to p.q - 1 do
        if a <> b then
          Graph.add_edge g (LIx.gadget p false j a) (LIx.gadget p true j b)
      done
    done
  done;
  List.iter
    (fun side_b ->
      for i = 0 to p.k - 1 do
        let w = words.(i) in
        for j = 0 to p.ell + p.t - 1 do
          for a = 0 to p.q - 1 do
            if a <> w.(j) then
              List.iter
                (fun v -> Graph.add_edge g v (LIx.gadget p side_b j a))
                (batch side_b i)
          done
        done
      done)
    [ false; true ];
  (* inputs of length k *)
  for i = 0 to p.k - 1 do
    if not (Bits.get x i) then connect_batches va (batch false i);
    if not (Bits.get y i) then connect_batches vb (batch true i)
  done;
  g

let linear_side p =
  let side = Array.make (LIx.n p) false in
  for xi = 0 to p.ell - 1 do
    side.(LIx.va p xi) <- true
  done;
  for i = 0 to p.k - 1 do
    for xi = 0 to p.ell - 1 do
      side.(LIx.batch p false i xi) <- true
    done
  done;
  for j = 0 to p.ell + p.t - 1 do
    for a = 0 to p.q - 1 do
      side.(LIx.gadget p false j a) <- true
    done
  done;
  side

let linear_family p =
  let target = linear_yes_size p in
  {
    Framework.name = "maxis-5/6-approx (Thm 4.2)";
    params = [ ("k", p.k); ("ell", p.ell); ("t", p.t); ("q", p.q) ];
    input_bits = p.k;
    nvertices = LIx.n p;
    side = linear_side p;
    build = (fun x y -> Framework.Undirected (build_linear p x y));
    predicate =
      (fun inst ->
        match inst with
        | Framework.Undirected g -> Ch_solvers.Mis.alpha g >= target
        | _ -> invalid_arg "expected undirected");
    f = Commfn.intersecting;
  }
