open Ch_graph
open Ch_cc

(** Section 3: the Ω̃(n) lower bounds for bounded-degree graphs.

    The base MaxIS family is pushed through the reduction chain
    G → φ → φ′ → G′ of Section 3.1.  The result G′ has maximum degree 5
    and logarithmic diameter, its cut against the Alice/Bob split equals
    the base family's Θ(log k) cut, and

      α(G′) = α(G) + |E(G)| + m_exp,

    so α(G′) = Z + |E| + m_exp iff DISJ(x,y) = FALSE.  As in Claim 3.6,
    |E| and m_exp are input-dependent but each player knows its own share,
    so announcing them costs two extra messages — this family is used with
    that amended simulation rather than the plain Theorem 1.1 statement.

    The same instance yields MVC hardness (τ = n′ − α, Theorem 3.2); the
    MVC→MDS reduction of Theorem 3.3 is [mds_instance]. *)

type instance = {
  graph : Graph.t;  (** G′, max degree 5 *)
  side : bool array;
  alpha_target : int;  (** Z + |E(G)| + m_exp for this input pair *)
  m_base : int;  (** |E(G_{x,y})| *)
  m_exp : int;
  base_alpha : int;  (** α(G_{x,y}), exact *)
}

val build : ?seed:int -> k:int -> Bits.t -> Bits.t -> instance

val alpha' : instance -> int
(** α(G′) through the verified chain equalities (the direct computation is
    exponential-time on these sizes; [alpha_direct] exists for smoke
    tests). *)

val alpha_direct : instance -> int
(** α(G′) by the exact solver. *)

val predicate : instance -> bool
(** α(G′) = alpha_target, decided via [alpha']. *)

val cut_size : instance -> int

val mvc_to_mds : Graph.t -> Graph.t
(** The Theorem 3.3 reduction: add, per edge {u,v}, a fresh vertex
    adjacent to u and v.  γ of the result equals τ of the input, degrees
    only double, and the diameter grows by O(1). *)
