open Ch_graph
open Ch_sat

type instance = {
  graph : Graph.t;
  side : bool array;
  alpha_target : int;
  m_base : int;
  m_exp : int;
  base_alpha : int;
}

let build ?(seed = 0) ~k x y =
  let base = Maxis_lb.build ~k x y in
  let base_side = Maxis_lb.side ~k in
  let phi = Sat_reductions.graph_to_cnf base in
  let e = Sat_reductions.expand ~seed phi in
  let sg = Sat_reductions.cnf_to_graph e.Sat_reductions.cnf in
  let side =
    Array.map
      (fun v -> base_side.(e.Sat_reductions.owner.(v)))
      sg.Sat_reductions.slot_var
  in
  let base_alpha = Ch_solvers.Mis.alpha base in
  {
    graph = sg.Sat_reductions.graph;
    side;
    alpha_target = Maxis_lb.alpha_target ~k + Graph.m base + e.Sat_reductions.m_exp;
    m_base = Graph.m base;
    m_exp = e.Sat_reductions.m_exp;
    base_alpha;
  }

let alpha' inst = inst.base_alpha + inst.m_base + inst.m_exp

let alpha_direct inst = Ch_solvers.Mis.alpha inst.graph

let predicate inst = alpha' inst = inst.alpha_target

let cut_size inst =
  let cut = ref 0 in
  Graph.iter_edges
    (fun u v _ -> if inst.side.(u) <> inst.side.(v) then incr cut)
    inst.graph;
  !cut

let mvc_to_mds g =
  let n = Graph.n g in
  let m = Graph.m g in
  let g' = Graph.create (n + m) in
  Graph.iter_edges (fun u v _ -> Graph.add_edge g' u v) g;
  let next = ref n in
  Graph.iter_edges
    (fun u v _ ->
      Graph.add_edge g' !next u;
      Graph.add_edge g' !next v;
      incr next)
    g;
  g'
