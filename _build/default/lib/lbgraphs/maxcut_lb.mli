open Ch_graph
open Ch_cc

(** The Figure 3 / Theorem 2.8 family: deciding whether a weighted graph
    has a cut of weight M requires Ω(n²/log² n) rounds.

    The budget trick: every row vertex a₁^i carries weight-1 edges to the
    a₂^j with x_{i,j} = 0 plus an edge to N_A of weight Σ_j x_{i,j}, so the
    weight from a₁^i into A₂ ∪ {N_A} is always exactly k.  A maximum cut
    is forced (by the k⁴-weight edges) to place N_A, N_B opposite CA, CB
    and to pick consistent bit-gadget sides; it reaches
    M = k⁴(8·log k + 4) + k³(12·log k − 4) + 4k² + 4k iff some index pair
    has x_{i,j} = y_{i,j} = 1. *)

module Ix : sig
  val n : k:int -> int
  (** 4k + 8·log k + 5. *)

  val row : k:int -> Mds_lb.set -> int -> int

  val f : k:int -> Mds_lb.set -> int -> int

  val t : k:int -> Mds_lb.set -> int -> int

  val ca : k:int -> int

  val ca_bar : k:int -> int

  val cb : k:int -> int

  val na : k:int -> int

  val nb : k:int -> int
end

val target_weight : k:int -> int
(** M. *)

val build : k:int -> Bits.t -> Bits.t -> Graph.t

val side : k:int -> bool array

val family : k:int -> Ch_core.Framework.t
